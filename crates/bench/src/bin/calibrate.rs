//! Calibration dashboard: prints the key shape metrics of the paper for
//! the current generator parameters, per data center.
//!
//! ```text
//! cargo run -p vmcw-bench --release --bin calibrate -- [--scale F] [--seed N] [dcs...]
//! ```
//!
//! Shape targets (from the paper, see DESIGN.md §3):
//! * fig2/3: Banking P/A>5 for ≥50%, CoV≥1 for ≥50%; Airlines/NatRes modest.
//! * fig4/5: memory P/A ≤1.5 for ≥50% everywhere; mem CoV≥1 rare.
//! * fig6: ratio>160 — Banking ~70%, Beverage <10%, NatRes <10%, Airlines 0%.
//! * fig7: space  Stochastic ≤ Dynamic@0.8; Dynamic < Vanilla for 3 of 4.
//! * fig13-16: Dynamic@1.0 ≈ 0.82×Stochastic (Banking), ≈ Stochastic (Airlines).

use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_consolidation::planner::Planner;
use vmcw_emulator::engine::{emulate, EmulatorConfig};
use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};
use vmcw_trace::stats;

fn main() {
    let mut scale = 0.3;
    let mut seed = 42u64;
    let mut dcs: Vec<DataCenterId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().unwrap().parse().unwrap(),
            "--seed" => seed = args.next().unwrap().parse().unwrap(),
            "banking" => dcs.push(DataCenterId::Banking),
            "airlines" => dcs.push(DataCenterId::Airlines),
            "natres" => dcs.push(DataCenterId::NaturalResources),
            "beverage" => dcs.push(DataCenterId::Beverage),
            other => panic!("unknown arg {other}"),
        }
    }
    if dcs.is_empty() {
        dcs = DataCenterId::ALL.to_vec();
    }
    for dc in dcs {
        report(dc, scale, seed);
    }
}

fn frac_above(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&v| v > x).count() as f64 / samples.len() as f64
}

fn report(dc: DataCenterId, scale: f64, seed: u64) {
    let history_days = 30;
    let eval_days = 14;
    let w = GeneratorConfig::new(dc)
        .scale(scale)
        .days(history_days + eval_days)
        .generate(seed);
    let hh = history_days * 24;

    // Workload shapes over the history month.
    let mut cpu_pa = Vec::new();
    let mut cpu_cov = Vec::new();
    let mut mem_pa = Vec::new();
    let mut mem_cov = Vec::new();
    for s in &w.servers {
        let cpu = &s.cpu_used_frac.values()[..hh];
        let mem = &s.mem_used_mb.values()[..hh];
        cpu_pa.extend(stats::peak_to_average(cpu));
        cpu_cov.extend(stats::coefficient_of_variability(cpu));
        mem_pa.extend(stats::peak_to_average(mem));
        mem_cov.extend(stats::coefficient_of_variability(mem));
    }
    let cpu_agg = w.aggregate_cpu_rpe2();
    let mem_agg = w.aggregate_mem_mb();
    let ratios: Vec<f64> = cpu_agg.values()[hh..]
        .chunks(2)
        .zip(mem_agg.values()[hh..].chunks(2))
        .map(|(c, m)| {
            let c = c.iter().copied().fold(0.0, f64::max);
            let m = m.iter().copied().fold(0.0, f64::max);
            c / (m / 1024.0)
        })
        .collect();

    println!(
        "== {dc} (scale {scale}, seed {seed}, {} servers) ==",
        w.servers.len()
    );
    println!(
        "  table2 util: {:.2}% (paper {:.0}%)",
        w.mean_cpu_util_pct(),
        dc.table2_cpu_util_pct()
    );
    println!(
        "  cpu  P/A: >2 {:.0}%  >5 {:.0}%  >10 {:.0}%   CoV>=1: {:.0}%",
        frac_above(&cpu_pa, 2.0) * 100.0,
        frac_above(&cpu_pa, 5.0) * 100.0,
        frac_above(&cpu_pa, 10.0) * 100.0,
        frac_above(&cpu_cov, 1.0) * 100.0
    );
    println!(
        "  mem  P/A: <=1.5 {:.0}%   CoV>=1: {:.0}%  CoV<=0.5: {:.0}%",
        (1.0 - frac_above(&mem_pa, 1.5)) * 100.0,
        frac_above(&mem_cov, 1.0) * 100.0,
        (1.0 - frac_above(&mem_cov, 0.5)) * 100.0
    );
    println!(
        "  fig6 ratio: >160 {:.0}% of intervals  median {:.0}  max {:.0}",
        frac_above(&ratios, 160.0) * 100.0,
        stats::percentile(&ratios, 50.0).unwrap_or(0.0),
        ratios.iter().copied().fold(0.0, f64::max)
    );

    // Demand decomposition: what drives each planner's footprint.
    let input = PlanningInput::from_workload(&w, history_days, VirtualizationModel::baseline());
    {
        use vmcw_consolidation::sizing::SizingFunction;
        let hh = history_days * 24;
        let sum_tails_cpu: f64 = input
            .vms
            .iter()
            .map(|t| SizingFunction::Max.size(&t.cpu_rpe2.values()[..hh]))
            .sum();
        let sum_bodies_cpu: f64 = input
            .vms
            .iter()
            .map(|t| SizingFunction::BODY_P90.size(&t.cpu_rpe2.values()[..hh]))
            .sum();
        // Worst-bucket envelope (168 hour-of-week buckets).
        let mut bucket_env = vec![0.0f64; 168];
        for t in &input.vms {
            let cpu = &t.cpu_rpe2.values()[..hh];
            let body = SizingFunction::BODY_P90.size(cpu);
            let tail = SizingFunction::Max.size(cpu);
            let mut env = vec![body; 168];
            for (i, &v) in cpu.iter().enumerate() {
                if v > body {
                    env[i % 168] = tail;
                }
            }
            for b in 0..168 {
                bucket_env[b] += env[b];
            }
        }
        let worst_bucket = bucket_env.iter().copied().fold(0.0, f64::max);
        // True worst 2h window of the aggregate during evaluation.
        let total = input.total_hours();
        let agg: Vec<f64> = (0..total)
            .map(|h| {
                input
                    .vms
                    .iter()
                    .map(|t| t.cpu_rpe2.get(h).unwrap_or(0.0))
                    .sum()
            })
            .collect();
        let worst_window_eval = agg[hh..]
            .chunks(2)
            .map(|c| c.iter().copied().fold(0.0, f64::max))
            .fold(0.0, f64::max);
        let mem_total_max: f64 = {
            let m: Vec<f64> = (0..total)
                .map(|h| {
                    input
                        .vms
                        .iter()
                        .map(|t| t.mem_mb.get(h).unwrap_or(0.0))
                        .sum()
                })
                .collect();
            m.iter().copied().fold(0.0, f64::max)
        };
        let cap = 20480.0;
        println!(
            "  cpu decomposition (hosts @full cap): sum_tails {:.1}  worst_bucket_env {:.1}  sum_bodies {:.1}  worst_eval_window {:.1}  mem_floor {:.1}",
            sum_tails_cpu / cap,
            worst_bucket / cap,
            sum_bodies_cpu / cap,
            worst_window_eval / cap,
            mem_total_max / 131072.0
        );
    }
    let planner = Planner::baseline();
    let semi = planner.plan_semi_static(&input).expect("semi");
    let stoch = planner.plan_stochastic(&input).expect("stoch");
    let n_semi = semi.provisioned_hosts();
    let n_stoch = stoch.provisioned_hosts();
    print!("  hosts: vanilla {n_semi}  stochastic {n_stoch}  dynamic@U:");
    let mut dyn_hosts = Vec::new();
    for bound in [0.7, 0.8, 0.9, 1.0] {
        let p = planner.with_utilization_bound(bound);
        let plan = p.plan_dynamic(&input).expect("dyn");
        dyn_hosts.push((bound, plan.provisioned_hosts()));
        print!(" {bound}:{}", plan.provisioned_hosts());
    }
    println!();

    // Baseline emulation for contention and power.
    let cfg = EmulatorConfig::default();
    let dynamic = planner.plan_dynamic(&input).expect("dyn");
    let r_semi = emulate(&input, &semi, &cfg).expect("emulation");
    let r_stoch = emulate(&input, &stoch, &cfg).expect("emulation");
    let r_dyn = emulate(&input, &dynamic, &cfg).expect("emulation");
    println!(
        "  power kWh: vanilla {:.0}  stochastic {:.0}  dynamic {:.0} (dyn/stoch {:.2})",
        r_semi.energy_kwh,
        r_stoch.energy_kwh,
        r_dyn.energy_kwh,
        r_dyn.energy_kwh / r_stoch.energy_kwh
    );
    println!(
        "  contention frac: vanilla {:.4}  stochastic {:.4}  dynamic {:.4}",
        r_semi.contention_time_fraction(),
        r_stoch.contention_time_fraction(),
        r_dyn.contention_time_fraction()
    );
    let peak_over_1 = r_dyn
        .per_host
        .iter()
        .filter(|h| h.active_hours > 0 && h.peak_cpu_util > 1.0)
        .count() as f64
        / r_dyn
            .per_host
            .iter()
            .filter(|h| h.active_hours > 0)
            .count()
            .max(1) as f64;
    // Contention diagnosis: which resource, which hours.
    let cpu_cont_hours: usize = r_dyn
        .per_hour
        .iter()
        .filter(|h| h.cpu_contention > 0.0)
        .count();
    let mem_cont_hours: usize = r_dyn
        .per_hour
        .iter()
        .filter(|h| h.mem_contention > 0.0)
        .count();
    let mut by_hod = [0usize; 24];
    for h in &r_dyn.per_hour {
        if h.contended_hosts > 0 {
            by_hod[h.hour % 24] += h.contended_hosts;
        }
    }
    let peak_hod = by_hod
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!(
        "  dynamic contention: cpu-hours {cpu_cont_hours} mem-hours {mem_cont_hours} peak-hour-of-day {peak_hod} dist {:?}",
        by_hod
    );
    println!(
        "  dynamic: peak>100% hosts {:.0}%  migrations {} (failed {})  min/max active {}..{}",
        peak_over_1 * 100.0,
        r_dyn.migrations,
        r_dyn.failed_migrations,
        r_dyn
            .per_hour
            .iter()
            .map(|h| h.active_hosts)
            .min()
            .unwrap_or(0),
        r_dyn
            .per_hour
            .iter()
            .map(|h| h.active_hosts)
            .max()
            .unwrap_or(0),
    );
}
