//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p vmcw-bench --release --bin figures -- [OPTIONS] [IDS...]
//!
//! OPTIONS:
//!   --quick          run at reduced scale (8% of servers, shorter traces)
//!   --scale <f>      server-count scale (default 1.0)
//!   --seed <n>       generator seed (default 42)
//!   --out <dir>      output directory (default results/)
//!
//! IDS: table1 table2 table3 fig1..fig12 olio migration emuval
//!      sensitivity (= figs 13-16) | fig13 fig14 fig15 fig16
//!      (default: everything)
//! ```
//!
//! Each experiment writes `<out>/<id>.csv` and prints a one-line summary.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use vmcw_core::experiments::{
    reproduction_summary, run_experiment, Suite, SuiteConfig, ALL_EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
};

struct Options {
    config: SuiteConfig,
    out: PathBuf,
    ids: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut config = SuiteConfig::paper();
    let mut out = PathBuf::from("results");
    let mut ids = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config = SuiteConfig::quick(),
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                config.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                config.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: figures [--quick] [--scale F] [--seed N] [--out DIR] [ids...]"
                        .to_owned(),
                );
            }
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|&s| s.to_owned()).collect();
        ids.push("sensitivity".to_owned());
        ids.extend(EXTENSION_EXPERIMENTS.iter().map(|&s| s.to_owned()));
    }
    Ok(Options { config, out, ids })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# vmcw figure harness — scale {}, seed {}, {}+{} days, output {}",
        options.config.scale,
        options.config.seed,
        options.config.history_days,
        options.config.eval_days,
        options.out.display()
    );
    let mut suite = Suite::new(options.config);
    let mut failures = 0;
    for id in &options.ids {
        let start = Instant::now();
        match run_experiment(id, &mut suite) {
            Ok(tables) => {
                for table in tables {
                    match table.write_csv(&options.out) {
                        Ok(path) => println!(
                            "{id:>12}: {} rows -> {} ({:.1}s)",
                            table.len(),
                            path.display(),
                            start.elapsed().as_secs_f64()
                        ),
                        Err(e) => {
                            eprintln!("{id:>12}: write failed: {e}");
                            failures += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{id:>12}: {e}");
                failures += 1;
            }
        }
    }
    // Paper-vs-measured summary over the suite's cached runs.
    match reproduction_summary(&mut suite) {
        Ok(md) => {
            let path = options.out.join("SUMMARY.md");
            if let Err(e) = std::fs::write(&path, &md) {
                eprintln!("     SUMMARY: write failed: {e}");
                failures += 1;
            } else {
                let headline = md.lines().nth(2).unwrap_or_default();
                println!("     SUMMARY: {} -> {}", headline.trim(), path.display());
            }
        }
        Err(e) => {
            eprintln!("     SUMMARY: {e}");
            failures += 1;
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) failed");
        ExitCode::FAILURE
    }
}
