//! A tiny HTTP load client for `vmcw serve` — just enough to drive the
//! CI `serve-smoke` job and local overload experiments without pulling
//! an HTTP dependency into this offline workspace.
//!
//! Two modes back the `vmcw load` subcommand:
//!
//! * **one-shot** — a single request whose status/body the caller can
//!   assert on (`--get /readyz --expect-status 200`), optionally
//!   retried for a bounded wall-clock window so CI can wait for a
//!   server to boot or a job to finish;
//! * **flood** — `rps × duration` concurrent `POST`s, classified by
//!   status code, so overload tests can assert that shedding (503)
//!   actually happened while admitted requests still succeeded.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpReply {
    /// Status code of the response line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body as text (lossily decoded).
    pub body: String,
}

impl HttpReply {
    /// First value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one `Connection: close` HTTP/1.1 request to
/// `127.0.0.1:port` and reads the whole response.
///
/// # Errors
///
/// A human-readable message for connection, write, read or response
/// framing failures.
pub fn request(port: u16, method: &str, path: &str, body: &str) -> Result<HttpReply, String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("connect 127.0.0.1:{port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1:{port}\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("write request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or("response has no header/body separator")?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: body.to_owned(),
    })
}

/// Aggregate of one [`flood`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloodReport {
    /// Requests attempted.
    pub sent: usize,
    /// Responses by status code.
    pub by_status: BTreeMap<u16, usize>,
    /// Transport-level failures (connection refused, resets).
    pub transport_errors: usize,
}

impl FloodReport {
    /// Responses with the given status.
    #[must_use]
    pub fn count(&self, status: u16) -> usize {
        self.by_status.get(&status).copied().unwrap_or(0)
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = self
            .by_status
            .iter()
            .map(|(s, n)| format!("{n}x {s}"))
            .collect();
        if self.transport_errors > 0 {
            parts.push(format!("{}x transport-error", self.transport_errors));
        }
        format!("sent {}: {}", self.sent, parts.join(", "))
    }
}

/// Fires `rps × duration_secs` copies of `POST path` at a fixed pace,
/// one thread per request (each request may block server-side in the
/// admission queue), and classifies every response by status.
#[must_use]
pub fn flood(port: u16, path: &str, body: &str, rps: u32, duration_secs: f64) -> FloodReport {
    let total = ((f64::from(rps) * duration_secs).round() as usize).max(1);
    let gap = Duration::from_secs_f64(1.0 / f64::from(rps.max(1)));
    let report = Arc::new(Mutex::new(FloodReport::default()));
    let mut handles = Vec::with_capacity(total);
    let started = Instant::now();
    for i in 0..total {
        // Fixed-schedule pacing: request i fires at i * gap, however
        // long earlier requests take.
        let due = started + gap * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let report = Arc::clone(&report);
        let (path, body) = (path.to_owned(), body.to_owned());
        handles.push(std::thread::spawn(move || {
            let outcome = request(port, "POST", &path, &body);
            let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            r.sent += 1;
            match outcome {
                Ok(reply) => *r.by_status.entry(reply.status).or_insert(0) += 1,
                Err(_) => r.transport_errors += 1,
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    Arc::try_unwrap(report)
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_parse_statuses_and_bodies() {
        let r = parse_reply(b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n\r\n{\"a\":1}")
            .unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, "{\"a\":1}");
        assert_eq!(r.header("Retry-After"), Some("2"));
        assert_eq!(r.header("retry-after"), Some("2"));
        assert_eq!(r.header("x-missing"), None);
        assert!(parse_reply(b"garbage").is_err());
        assert!(parse_reply(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }

    #[test]
    fn flood_report_counts() {
        let mut r = FloodReport { sent: 3, ..FloodReport::default() };
        *r.by_status.entry(200).or_insert(0) += 2;
        *r.by_status.entry(503).or_insert(0) += 1;
        assert_eq!(r.count(200), 2);
        assert_eq!(r.count(503), 1);
        assert_eq!(r.count(404), 0);
        assert!(r.summary().contains("2x 200"), "{}", r.summary());
    }
}
