//! Wall-clock benchmark suites behind `vmcw bench`.
//!
//! Two suites cover the pipeline's hot paths end to end:
//!
//! * **emulator** — trace generation and plan replay (plain and
//!   fault-injected), the per-hour inner loop of every evaluation figure;
//! * **planners** — one entry per evaluated planner kind, the
//!   placement-search cost that dominates large grids.
//!
//! Each suite times its stages with [`Instant`] at every requested
//! population scale and serialises to a small stable JSON document
//! (`vmcw-bench/v1`) written as `BENCH_emulator.json` /
//! `BENCH_planners.json`, so successive runs can be diffed by scripts
//! without a JSON library on either side. The same stages back the
//! criterion target `perf_suite`, keeping `cargo bench` and `vmcw bench`
//! measurements comparable. Methodology: docs/PERFORMANCE.md.

use std::time::Instant;

use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_consolidation::planner::{Planner, PlannerKind};
use vmcw_emulator::engine::{emulate, emulate_with_faults, EmulatorConfig};
use vmcw_emulator::faults::FaultConfig;
use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

/// History days fed to the planners by every suite.
pub const HISTORY_DAYS: usize = 7;
/// Evaluation days replayed by the emulator suite.
pub const EVAL_DAYS: usize = 3;

/// One timed stage at one population scale.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stage name (`trace-gen`, `replay-plain`, a planner label, ...).
    pub stage: String,
    /// Population scale the stage ran at.
    pub scale: f64,
    /// Wall-clock duration of the stage, seconds.
    pub seconds: f64,
    /// Work items processed (VMs generated, hours replayed, moves
    /// planned) — turns the timing into a throughput.
    pub items: usize,
}

/// A completed suite: its entries plus the parameters that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Suite name: `emulator` or `planners`.
    pub suite: &'static str,
    /// Generator seed shared by every stage.
    pub seed: u64,
    /// Timed stages, in execution order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSuite {
    /// Serialises the suite as a `vmcw-bench/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.entries.len());
        out.push_str("{\n");
        out.push_str("  \"schema\": \"vmcw-bench/v1\",\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.suite));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"history_days\": {HISTORY_DAYS},\n"));
        out.push_str(&format!("  \"eval_days\": {EVAL_DAYS},\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"scale\": {}, \"seconds\": {:.6}, \"items\": {}}}{}\n",
                e.stage,
                json_f64(e.scale),
                e.seconds,
                e.items,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Formats an `f64` as a JSON number (never `NaN`/`inf`, always with
/// enough digits to round-trip a scale like `0.1`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers like `1` are valid JSON numbers already.
        s
    } else {
        "0".to_string()
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// The data center every suite runs on. Banking is the largest
/// population in Table 2, so it exercises the worst-case grid cell.
pub const BENCH_DC: DataCenterId = DataCenterId::Banking;

/// Times trace generation and plan replay (plain and fault-injected) at
/// each scale.
///
/// # Panics
///
/// Panics if planning or replay fails — benchmark inputs are always
/// well-formed, so a failure is a bug worth surfacing loudly.
#[must_use]
pub fn run_emulator_suite(scales: &[f64], seed: u64) -> BenchSuite {
    let mut entries = Vec::new();
    for &scale in scales {
        let (workload, gen_secs) = timed(|| {
            GeneratorConfig::new(BENCH_DC)
                .scale(scale)
                .days(HISTORY_DAYS + EVAL_DAYS)
                .generate(seed)
        });
        entries.push(BenchEntry {
            stage: "trace-gen".into(),
            scale,
            seconds: gen_secs,
            items: workload.servers.len(),
        });

        let input =
            PlanningInput::from_workload(&workload, HISTORY_DAYS, VirtualizationModel::baseline());
        let planner = Planner::baseline();
        let plan = planner.plan_dynamic(&input).expect("dynamic plan");
        let cfg = EmulatorConfig::default();

        let (report, replay_secs) = timed(|| emulate(&input, &plan, &cfg).expect("replay"));
        entries.push(BenchEntry {
            stage: "replay-plain".into(),
            scale,
            seconds: replay_secs,
            items: report.hours,
        });

        let faults = FaultConfig::baseline(seed);
        let (report, faulted_secs) =
            timed(|| emulate_with_faults(&input, &plan, &cfg, &faults).expect("faulted replay"));
        entries.push(BenchEntry {
            stage: "replay-faulted".into(),
            scale,
            seconds: faulted_secs,
            items: report.hours,
        });
    }
    BenchSuite {
        suite: "emulator",
        seed,
        entries,
    }
}

/// Times each evaluated planner at each scale.
///
/// # Panics
///
/// Panics if a planner fails on the benchmark input (a bug).
#[must_use]
pub fn run_planner_suite(scales: &[f64], seed: u64) -> BenchSuite {
    let mut entries = Vec::new();
    for &scale in scales {
        let input = crate::bench_input(BENCH_DC, scale, HISTORY_DAYS, EVAL_DAYS, seed);
        let planner = Planner::baseline();
        for kind in PlannerKind::EVALUATED {
            let (plan, secs) = timed(|| planner.plan(kind, &input).expect("plan"));
            entries.push(BenchEntry {
                stage: kind.label().to_string(),
                scale,
                seconds: secs,
                items: plan.migrations.len().max(input.vms.len()),
            });
        }
    }
    BenchSuite {
        suite: "planners",
        seed,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_cover_every_stage_and_scale() {
        let scales = [0.02, 0.03];
        let emu = run_emulator_suite(&scales, 11);
        assert_eq!(emu.suite, "emulator");
        // trace-gen + replay-plain + replay-faulted per scale.
        assert_eq!(emu.entries.len(), 3 * scales.len());
        let planners = run_planner_suite(&scales, 11);
        assert_eq!(
            planners.entries.len(),
            PlannerKind::EVALUATED.len() * scales.len()
        );
        for e in emu.entries.iter().chain(&planners.entries) {
            assert!(e.seconds >= 0.0);
            assert!(e.items > 0, "{} must report work items", e.stage);
        }
    }

    #[test]
    fn json_is_well_formed_and_stable_in_shape() {
        let suite = BenchSuite {
            suite: "emulator",
            seed: 7,
            entries: vec![
                BenchEntry {
                    stage: "trace-gen".into(),
                    scale: 0.1,
                    seconds: 0.25,
                    items: 42,
                },
                BenchEntry {
                    stage: "replay-plain".into(),
                    scale: 1.0,
                    seconds: 1.5,
                    items: 72,
                },
            ],
        };
        let json = suite.to_json();
        assert!(json.contains("\"schema\": \"vmcw-bench/v1\""));
        assert!(json.contains("\"suite\": \"emulator\""));
        assert!(json.contains("\"scale\": 0.1"));
        // Exactly one trailing comma between the two entries, none after
        // the last — the document must parse as strict JSON.
        assert_eq!(json.matches("}},").count() + json.matches("},\n").count(), 1);
        assert!(balanced(&json), "unbalanced braces/brackets:\n{json}");
    }

    fn balanced(s: &str) -> bool {
        let mut depth = 0i32;
        let mut in_str = false;
        for c in s.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }
}
