//! Two-dimensional resource vectors.
//!
//! The paper's consolidation planners optimise CPU and memory jointly
//! ("Consolidation planning optimizes CPU and memory, while using network
//! and disk throughput as constraints"). [`Resources`] is the 2-vector used
//! for demands, capacities and headroom throughout the workspace. CPU is
//! measured in RPE2 units, memory in megabytes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A (CPU, memory) resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// CPU in RPE2 units.
    pub cpu_rpe2: f64,
    /// Memory in MB.
    pub mem_mb: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu_rpe2: 0.0,
        mem_mb: 0.0,
    };

    /// Creates a resource vector.
    #[must_use]
    pub fn new(cpu_rpe2: f64, mem_mb: f64) -> Self {
        Self { cpu_rpe2, mem_mb }
    }

    /// Whether both components of `self` fit within `capacity`.
    #[must_use]
    pub fn fits_within(&self, capacity: &Resources) -> bool {
        self.cpu_rpe2 <= capacity.cpu_rpe2 && self.mem_mb <= capacity.mem_mb
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            cpu_rpe2: self.cpu_rpe2.max(other.cpu_rpe2),
            mem_mb: self.mem_mb.max(other.mem_mb),
        }
    }

    /// Component-wise subtraction clamped at zero (remaining headroom).
    #[must_use]
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu_rpe2: (self.cpu_rpe2 - other.cpu_rpe2).max(0.0),
            mem_mb: (self.mem_mb - other.mem_mb).max(0.0),
        }
    }

    /// The dominant share of this demand relative to `capacity`: the larger
    /// of the per-dimension fractions. This is the classic "dominant
    /// resource" scalarisation used to order items in vector bin packing.
    ///
    /// Returns 0 when `capacity` has a non-positive component.
    #[must_use]
    pub fn dominant_share(&self, capacity: &Resources) -> f64 {
        if capacity.cpu_rpe2 <= 0.0 || capacity.mem_mb <= 0.0 {
            return 0.0;
        }
        (self.cpu_rpe2 / capacity.cpu_rpe2).max(self.mem_mb / capacity.mem_mb)
    }

    /// Euclidean norm of the per-dimension fractions relative to
    /// `capacity` — an alternative packing order key.
    #[must_use]
    pub fn normalized_l2(&self, capacity: &Resources) -> f64 {
        if capacity.cpu_rpe2 <= 0.0 || capacity.mem_mb <= 0.0 {
            return 0.0;
        }
        let c = self.cpu_rpe2 / capacity.cpu_rpe2;
        let m = self.mem_mb / capacity.mem_mb;
        (c * c + m * m).sqrt()
    }

    /// CPU(RPE2) / memory(GB) ratio — the paper's "resource ratio" (Fig 6).
    ///
    /// Returns `None` when memory is zero.
    #[must_use]
    pub fn cpu_mem_ratio(&self) -> Option<f64> {
        if self.mem_mb <= 0.0 {
            None
        } else {
            Some(self.cpu_rpe2 / (self.mem_mb / 1024.0))
        }
    }

    /// Whether either component is negative (useful in debug assertions).
    #[must_use]
    pub fn has_negative(&self) -> bool {
        self.cpu_rpe2 < 0.0 || self.mem_mb < 0.0
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_rpe2: self.cpu_rpe2 + rhs.cpu_rpe2,
            mem_mb: self.mem_mb + rhs.mem_mb,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu_rpe2 += rhs.cpu_rpe2;
        self.mem_mb += rhs.mem_mb;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu_rpe2: self.cpu_rpe2 - rhs.cpu_rpe2,
            mem_mb: self.mem_mb - rhs.mem_mb,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu_rpe2 -= rhs.cpu_rpe2;
        self.mem_mb -= rhs.mem_mb;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: f64) -> Resources {
        Resources {
            cpu_rpe2: self.cpu_rpe2 * rhs,
            mem_mb: self.mem_mb * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} RPE2 / {:.0} MB", self.cpu_rpe2, self.mem_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(100.0, 1000.0);
        let b = Resources::new(50.0, 500.0);
        assert_eq!(a + b, Resources::new(150.0, 1500.0));
        assert_eq!(a - b, Resources::new(50.0, 500.0));
        assert_eq!(a * 2.0, Resources::new(200.0, 2000.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Resources::new(150.0, 1500.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        let total: Resources = std::iter::empty().sum();
        assert_eq!(total, Resources::ZERO);
    }

    #[test]
    fn fits_requires_both_dimensions() {
        let cap = Resources::new(100.0, 100.0);
        assert!(Resources::new(100.0, 100.0).fits_within(&cap));
        assert!(!Resources::new(100.1, 50.0).fits_within(&cap));
        assert!(!Resources::new(50.0, 100.1).fits_within(&cap));
    }

    #[test]
    fn dominant_share_picks_larger_fraction() {
        let cap = Resources::new(100.0, 1000.0);
        let d = Resources::new(10.0, 500.0);
        assert!((d.dominant_share(&cap) - 0.5).abs() < 1e-12);
        assert_eq!(
            Resources::new(1.0, 1.0).dominant_share(&Resources::ZERO),
            0.0
        );
    }

    #[test]
    fn normalized_l2_is_norm_of_fractions() {
        let cap = Resources::new(10.0, 10.0);
        let d = Resources::new(6.0, 8.0);
        assert!((d.normalized_l2(&cap) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_matches_paper_units() {
        // 160 RPE2 per GB — the HS23 reference line of Fig 6.
        let r = Resources::new(20480.0, 131072.0);
        assert!((r.cpu_mem_ratio().unwrap() - 160.0).abs() < 1e-9);
        assert_eq!(Resources::new(1.0, 0.0).cpu_mem_ratio(), None);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1.0, 5.0);
        let b = Resources::new(2.0, 3.0);
        assert_eq!(a.saturating_sub(&b), Resources::new(0.0, 2.0));
    }

    #[test]
    fn max_is_componentwise() {
        let a = Resources::new(1.0, 5.0);
        let b = Resources::new(2.0, 3.0);
        assert_eq!(a.max(&b), Resources::new(2.0, 5.0));
    }

    #[test]
    fn display_shows_units() {
        assert_eq!(Resources::new(10.0, 20.0).to_string(), "10 RPE2 / 20 MB");
    }

    #[test]
    fn has_negative_detects_sign() {
        assert!((Resources::new(1.0, 1.0) - Resources::new(2.0, 0.0)).has_negative());
        assert!(!Resources::new(0.0, 0.0).has_negative());
    }
}
