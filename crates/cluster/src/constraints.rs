//! Real-world deployment constraints (§2.2.4).
//!
//! "Constraints are broadly classified into inclusion and exclusion
//! constraints. Inclusion constraints capture affinity between two
//! entities. ... These may require constraints that place two VMs on the
//! same host/subnet/rack or pin a VM to a specific host/subnet/rack. In
//! our work, we have extended popular consolidation algorithms to also
//! support deployment constraints."
//!
//! The placement algorithms in `vmcw-consolidation` consult a
//! [`ConstraintSet`] on every candidate assignment.

use crate::datacenter::{HostId, HostLocation, RackId, SubnetId};
use crate::vm::VmId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A single deployment constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// Inclusion: the two VMs must share a host (e.g. an app server and
    /// its in-memory cache).
    Colocate(VmId, VmId),
    /// Exclusion: the two VMs must not share a host (e.g. HA pairs).
    AntiColocate(VmId, VmId),
    /// Inclusion: the VM must run on this specific host (license pinning).
    PinToHost(VmId, HostId),
    /// Inclusion: the VM must run on a host in this subnet.
    PinToSubnet(VmId, SubnetId),
    /// Inclusion: the VM must run on a host in this rack.
    PinToRack(VmId, RackId),
}

/// Error adding a constraint that contradicts the existing set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintConflict {
    /// The pair is already anti-colocated (or colocated, for the reverse).
    ContradictoryPair(VmId, VmId),
    /// The VM is already pinned to a different host.
    ContradictoryHostPin(VmId, HostId, HostId),
    /// The VM is already pinned to a different subnet.
    ContradictorySubnetPin(VmId, SubnetId, SubnetId),
    /// The VM is already pinned to a different rack.
    ContradictoryRackPin(VmId, RackId, RackId),
    /// A VM cannot be (anti-)colocated with itself.
    SelfPair(VmId),
}

impl fmt::Display for ConstraintConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintConflict::ContradictoryPair(a, b) => {
                write!(f, "{a} and {b} are both colocated and anti-colocated")
            }
            ConstraintConflict::ContradictoryHostPin(vm, old, new) => {
                write!(f, "{vm} already pinned to {old}, cannot also pin to {new}")
            }
            ConstraintConflict::ContradictorySubnetPin(vm, old, new) => {
                write!(
                    f,
                    "{vm} already pinned to subnet {}, cannot also pin to subnet {}",
                    old.0, new.0
                )
            }
            ConstraintConflict::ContradictoryRackPin(vm, old, new) => {
                write!(
                    f,
                    "{vm} already pinned to rack {}, cannot also pin to rack {}",
                    old.0, new.0
                )
            }
            ConstraintConflict::SelfPair(vm) => {
                write!(f, "{vm} cannot be paired with itself")
            }
        }
    }
}

impl Error for ConstraintConflict {}

/// A violation found by [`ConstraintSet::violations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A colocated pair was split across hosts.
    SplitAffinity(VmId, VmId),
    /// An anti-colocated pair shares a host.
    SharedHost(VmId, VmId, HostId),
    /// A host-pinned VM runs elsewhere.
    WrongHost(VmId, HostId, HostId),
    /// A subnet-pinned VM runs on a host in the wrong subnet.
    WrongSubnet(VmId, SubnetId),
    /// A rack-pinned VM runs on a host in the wrong rack.
    WrongRack(VmId, RackId),
}

fn ordered(a: VmId, b: VmId) -> (VmId, VmId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A set of deployment constraints with conflict checking.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    colocate: HashSet<(VmId, VmId)>,
    anti: HashSet<(VmId, VmId)>,
    pin_host: HashMap<VmId, HostId>,
    pin_subnet: HashMap<VmId, SubnetId>,
    pin_rack: HashMap<VmId, RackId>,
}

impl ConstraintSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set contains no constraints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.colocate.is_empty()
            && self.anti.is_empty()
            && self.pin_host.is_empty()
            && self.pin_subnet.is_empty()
            && self.pin_rack.is_empty()
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.colocate.len()
            + self.anti.len()
            + self.pin_host.len()
            + self.pin_subnet.len()
            + self.pin_rack.len()
    }

    /// Adds a constraint.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintConflict`] when the new constraint directly
    /// contradicts an existing one (colocate vs anti-colocate on the same
    /// pair, or conflicting pins). Adding a constraint twice is a no-op.
    pub fn add(&mut self, constraint: Constraint) -> Result<(), ConstraintConflict> {
        match constraint {
            Constraint::Colocate(a, b) => {
                if a == b {
                    return Err(ConstraintConflict::SelfPair(a));
                }
                let key = ordered(a, b);
                if self.anti.contains(&key) {
                    return Err(ConstraintConflict::ContradictoryPair(a, b));
                }
                self.colocate.insert(key);
            }
            Constraint::AntiColocate(a, b) => {
                if a == b {
                    return Err(ConstraintConflict::SelfPair(a));
                }
                let key = ordered(a, b);
                if self.colocate.contains(&key) {
                    return Err(ConstraintConflict::ContradictoryPair(a, b));
                }
                self.anti.insert(key);
            }
            Constraint::PinToHost(vm, host) => {
                if let Some(&existing) = self.pin_host.get(&vm) {
                    if existing != host {
                        return Err(ConstraintConflict::ContradictoryHostPin(vm, existing, host));
                    }
                }
                self.pin_host.insert(vm, host);
            }
            Constraint::PinToSubnet(vm, subnet) => {
                if let Some(&existing) = self.pin_subnet.get(&vm) {
                    if existing != subnet {
                        return Err(ConstraintConflict::ContradictorySubnetPin(
                            vm, existing, subnet,
                        ));
                    }
                }
                self.pin_subnet.insert(vm, subnet);
            }
            Constraint::PinToRack(vm, rack) => {
                if let Some(&existing) = self.pin_rack.get(&vm) {
                    if existing != rack {
                        return Err(ConstraintConflict::ContradictoryRackPin(vm, existing, rack));
                    }
                }
                self.pin_rack.insert(vm, rack);
            }
        }
        Ok(())
    }

    /// The host this VM is pinned to, if any.
    #[must_use]
    pub fn pinned_host(&self, vm: VmId) -> Option<HostId> {
        self.pin_host.get(&vm).copied()
    }

    /// The subnet this VM is pinned to, if any.
    #[must_use]
    pub fn pinned_subnet(&self, vm: VmId) -> Option<SubnetId> {
        self.pin_subnet.get(&vm).copied()
    }

    /// The rack this VM is pinned to, if any.
    #[must_use]
    pub fn pinned_rack(&self, vm: VmId) -> Option<RackId> {
        self.pin_rack.get(&vm).copied()
    }

    /// Whether two VMs are anti-colocated.
    #[must_use]
    pub fn are_anti_colocated(&self, a: VmId, b: VmId) -> bool {
        self.anti.contains(&ordered(a, b))
    }

    /// Whether placing `vm` at `location` alongside `residents` satisfies
    /// all constraints involving `vm`.
    ///
    /// Colocation constraints are *not* checked here: the planners satisfy
    /// them structurally by packing colocation groups as single items (see
    /// [`ConstraintSet::colocation_groups`]).
    #[must_use]
    pub fn allows(&self, vm: VmId, location: HostLocation, residents: &[VmId]) -> bool {
        if let Some(pinned) = self.pinned_host(vm) {
            if pinned != location.host {
                return false;
            }
        }
        if let Some(pinned) = self.pinned_subnet(vm) {
            if pinned != location.subnet {
                return false;
            }
        }
        if let Some(pinned) = self.pinned_rack(vm) {
            if pinned != location.rack {
                return false;
            }
        }
        residents.iter().all(|&r| !self.are_anti_colocated(vm, r))
    }

    /// Whether a whole colocation group may be placed at `location`
    /// alongside `residents`.
    #[must_use]
    pub fn allows_group(&self, group: &[VmId], location: HostLocation, residents: &[VmId]) -> bool {
        group.iter().all(|&vm| self.allows(vm, location, residents))
    }

    /// Partitions `vms` into colocation groups (transitive closure of the
    /// colocate pairs; VMs without affinity form singleton groups).
    ///
    /// Groups preserve the input order of their first member, and members
    /// within a group follow input order, so planners remain deterministic.
    #[must_use]
    pub fn colocation_groups(&self, vms: &[VmId]) -> Vec<Vec<VmId>> {
        // Union-find over positions in `vms`.
        let index: HashMap<VmId, usize> = vms.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut parent: Vec<usize> = (0..vms.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in &self.colocate {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                let ra = find(&mut parent, ia);
                let rb = find(&mut parent, ib);
                if ra != rb {
                    parent[ra.max(rb)] = ra.min(rb);
                }
            }
        }
        let mut groups: HashMap<usize, Vec<VmId>> = HashMap::new();
        for (i, &vm) in vms.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(vm);
        }
        let mut roots: Vec<usize> = groups.keys().copied().collect();
        roots.sort_unstable();
        roots
            .into_iter()
            .map(|r| groups.remove(&r).expect("root present"))
            .collect()
    }

    /// Checks a complete assignment and reports all violations.
    ///
    /// `locate` resolves a host to its location; unresolvable hosts are
    /// skipped for subnet/rack checks (they are reported by capacity
    /// checks elsewhere).
    #[must_use]
    pub fn violations<F>(&self, assignment: &HashMap<VmId, HostId>, locate: F) -> Vec<Violation>
    where
        F: Fn(HostId) -> Option<HostLocation>,
    {
        let mut out = Vec::new();
        for &(a, b) in &self.colocate {
            if let (Some(&ha), Some(&hb)) = (assignment.get(&a), assignment.get(&b)) {
                if ha != hb {
                    out.push(Violation::SplitAffinity(a, b));
                }
            }
        }
        for &(a, b) in &self.anti {
            if let (Some(&ha), Some(&hb)) = (assignment.get(&a), assignment.get(&b)) {
                if ha == hb {
                    out.push(Violation::SharedHost(a, b, ha));
                }
            }
        }
        for (&vm, &host) in &self.pin_host {
            if let Some(&actual) = assignment.get(&vm) {
                if actual != host {
                    out.push(Violation::WrongHost(vm, host, actual));
                }
            }
        }
        for (&vm, &subnet) in &self.pin_subnet {
            if let Some(&actual_host) = assignment.get(&vm) {
                if let Some(location) = locate(actual_host) {
                    if location.subnet != subnet {
                        out.push(Violation::WrongSubnet(vm, subnet));
                    }
                }
            }
        }
        for (&vm, &rack) in &self.pin_rack {
            if let Some(&actual_host) = assignment.get(&vm) {
                if let Some(location) = locate(actual_host) {
                    if location.rack != rack {
                        out.push(Violation::WrongRack(vm, rack));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(n: u32) -> VmId {
        VmId(n)
    }

    fn loc(host: u32, subnet: u16) -> HostLocation {
        HostLocation {
            host: HostId(host),
            rack: RackId(host / 14),
            subnet: SubnetId(subnet),
        }
    }

    fn loc_rack(host: u32, rack: u32) -> HostLocation {
        HostLocation {
            host: HostId(host),
            rack: RackId(rack),
            subnet: SubnetId(0),
        }
    }

    #[test]
    fn empty_set_allows_everything() {
        let cs = ConstraintSet::new();
        assert!(cs.is_empty());
        assert!(cs.allows(vm(1), loc(0, 0), &[vm(2), vm(3)]));
    }

    #[test]
    fn anti_colocation_blocks_shared_host() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::AntiColocate(vm(1), vm(2))).unwrap();
        assert!(!cs.allows(vm(1), loc(0, 0), &[vm(2)]));
        assert!(cs.allows(vm(1), loc(0, 0), &[vm(3)]));
        // Symmetric regardless of argument order.
        assert!(cs.are_anti_colocated(vm(2), vm(1)));
    }

    #[test]
    fn host_pin_restricts_host() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToHost(vm(1), HostId(5))).unwrap();
        assert!(cs.allows(vm(1), loc(5, 0), &[]));
        assert!(!cs.allows(vm(1), loc(4, 0), &[]));
        assert_eq!(cs.pinned_host(vm(1)), Some(HostId(5)));
    }

    #[test]
    fn subnet_pin_restricts_subnet() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToSubnet(vm(1), SubnetId(2))).unwrap();
        assert!(cs.allows(vm(1), loc(0, 2), &[]));
        assert!(!cs.allows(vm(1), loc(0, 1), &[]));
    }

    #[test]
    fn contradictions_are_rejected() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        assert_eq!(
            cs.add(Constraint::AntiColocate(vm(2), vm(1))),
            Err(ConstraintConflict::ContradictoryPair(vm(2), vm(1)))
        );
        cs.add(Constraint::PinToHost(vm(3), HostId(1))).unwrap();
        assert!(matches!(
            cs.add(Constraint::PinToHost(vm(3), HostId(2))),
            Err(ConstraintConflict::ContradictoryHostPin(..))
        ));
        cs.add(Constraint::PinToSubnet(vm(4), SubnetId(1))).unwrap();
        assert!(matches!(
            cs.add(Constraint::PinToSubnet(vm(4), SubnetId(2))),
            Err(ConstraintConflict::ContradictorySubnetPin(..))
        ));
        assert_eq!(
            cs.add(Constraint::Colocate(vm(5), vm(5))),
            Err(ConstraintConflict::SelfPair(vm(5)))
        );
    }

    #[test]
    fn duplicate_constraints_are_idempotent() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        cs.add(Constraint::Colocate(vm(2), vm(1))).unwrap();
        cs.add(Constraint::PinToHost(vm(1), HostId(0))).unwrap();
        cs.add(Constraint::PinToHost(vm(1), HostId(0))).unwrap();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn colocation_groups_are_transitive() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        cs.add(Constraint::Colocate(vm(2), vm(3))).unwrap();
        let vms = [vm(0), vm(1), vm(2), vm(3), vm(4)];
        let groups = cs.colocation_groups(&vms);
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&vec![vm(0)]));
        assert!(groups.contains(&vec![vm(1), vm(2), vm(3)]));
        assert!(groups.contains(&vec![vm(4)]));
    }

    #[test]
    fn colocation_groups_ignore_unknown_vms() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(99))).unwrap();
        let groups = cs.colocation_groups(&[vm(1), vm(2)]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn violations_reports_all_kinds() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        cs.add(Constraint::AntiColocate(vm(3), vm(4))).unwrap();
        cs.add(Constraint::PinToHost(vm(5), HostId(0))).unwrap();
        cs.add(Constraint::PinToSubnet(vm(6), SubnetId(0))).unwrap();
        let assignment: HashMap<VmId, HostId> = [
            (vm(1), HostId(0)),
            (vm(2), HostId(1)), // split affinity
            (vm(3), HostId(2)),
            (vm(4), HostId(2)), // shared host
            (vm(5), HostId(3)), // wrong host
            (vm(6), HostId(4)), // wrong subnet (subnet 1 below)
        ]
        .into_iter()
        .collect();
        let v = cs.violations(&assignment, |h| {
            Some(HostLocation {
                host: h,
                rack: RackId(0),
                subnet: SubnetId(1),
            })
        });
        assert_eq!(v.len(), 4);
        assert!(v.contains(&Violation::SplitAffinity(vm(1), vm(2))));
        assert!(v.contains(&Violation::SharedHost(vm(3), vm(4), HostId(2))));
        assert!(v.contains(&Violation::WrongHost(vm(5), HostId(0), HostId(3))));
        assert!(v.contains(&Violation::WrongSubnet(vm(6), SubnetId(0))));
    }

    #[test]
    fn violations_empty_for_satisfying_assignment() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        let assignment: HashMap<VmId, HostId> = [(vm(1), HostId(0)), (vm(2), HostId(0))]
            .into_iter()
            .collect();
        assert!(cs
            .violations(&assignment, |h| Some(HostLocation {
                host: h,
                rack: RackId(0),
                subnet: SubnetId(0)
            }))
            .is_empty());
    }

    #[test]
    fn group_check_requires_all_members() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::AntiColocate(vm(1), vm(9))).unwrap();
        assert!(!cs.allows_group(&[vm(1), vm(2)], loc(0, 0), &[vm(9)]));
        assert!(cs.allows_group(&[vm(1), vm(2)], loc(0, 0), &[vm(8)]));
    }

    #[test]
    fn rack_pin_restricts_rack() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToRack(vm(1), RackId(2))).unwrap();
        assert!(cs.allows(vm(1), loc_rack(0, 2), &[]));
        assert!(!cs.allows(vm(1), loc_rack(0, 1), &[]));
        assert_eq!(cs.pinned_rack(vm(1)), Some(RackId(2)));
        // Conflicting rack pins are rejected.
        assert!(matches!(
            cs.add(Constraint::PinToRack(vm(1), RackId(3))),
            Err(ConstraintConflict::ContradictoryRackPin(..))
        ));
        // Violations report the wrong rack.
        let assignment: HashMap<VmId, HostId> = [(vm(1), HostId(0))].into_iter().collect();
        let v = cs.violations(&assignment, |h| Some(loc_rack(h.0, 9)));
        assert_eq!(v, vec![Violation::WrongRack(vm(1), RackId(2))]);
    }

    #[test]
    fn conflict_messages_are_informative() {
        let c = ConstraintConflict::ContradictoryPair(vm(1), vm(2));
        assert!(c.to_string().contains("vm-1"));
        let c = ConstraintConflict::SelfPair(vm(3));
        assert!(c.to_string().contains("itself"));
    }
}
