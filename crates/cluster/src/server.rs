//! Server models (hardware specifications).

use crate::power::PowerModel;
use crate::resources::Resources;
use crate::rpe2;
use serde::{Deserialize, Serialize};

/// Hardware specification of a physical server model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerModel {
    /// Model name.
    pub name: String,
    /// CPU capacity in RPE2 units.
    pub cpu_rpe2: f64,
    /// Installed memory in MB.
    pub mem_mb: f64,
    /// Network link bandwidth in Mbit/s (used by the live-migration model
    /// and as a placement constraint).
    pub net_mbps: f64,
    /// Power model of the server.
    pub power: PowerModel,
}

impl ServerModel {
    /// The IBM HS23 Elite blade the paper uses as its consolidation
    /// target: 2 sockets, 128 GB extended memory ("one of the blade
    /// servers with the highest memory/CPU ratio"), 10 GbE.
    #[must_use]
    pub fn hs23_elite() -> Self {
        Self {
            name: "hs23-elite".to_owned(),
            cpu_rpe2: rpe2::HS23_ELITE_RPE2,
            mem_mb: 128.0 * 1024.0,
            net_mbps: 10_000.0,
            power: PowerModel::new(210.0, 410.0),
        }
    }

    /// The previous blade generation (HS22, 2010): roughly 60% of the
    /// HS23's compute with a quarter of its extended memory — the "old
    /// half" of a mixed estate.
    #[must_use]
    pub fn hs22() -> Self {
        Self {
            name: "hs22".to_owned(),
            cpu_rpe2: rpe2::rating_of("hs22").expect("catalog entry"),
            mem_mb: 32.0 * 1024.0,
            net_mbps: 1_000.0,
            power: PowerModel::new(190.0, 360.0),
        }
    }

    /// A smaller, older rack server, useful as a source-server spec or as
    /// a deliberately weak consolidation target in tests.
    #[must_use]
    pub fn x3550_m3() -> Self {
        Self {
            name: "x3550-m3".to_owned(),
            cpu_rpe2: rpe2::rating_of("x3550-m3").expect("catalog entry"),
            mem_mb: 32.0 * 1024.0,
            net_mbps: 1_000.0,
            power: PowerModel::new(150.0, 300.0),
        }
    }

    /// Total capacity as a resource vector.
    #[must_use]
    pub fn capacity(&self) -> Resources {
        Resources::new(self.cpu_rpe2, self.mem_mb)
    }

    /// CPU(RPE2)/memory(GB) ratio of this model — the Fig 6 reference
    /// quantity (160 for the HS23 Elite).
    #[must_use]
    pub fn cpu_mem_ratio(&self) -> f64 {
        self.capacity().cpu_mem_ratio().unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hs23_matches_paper_reference() {
        let m = ServerModel::hs23_elite();
        assert_eq!(m.mem_mb, 131_072.0);
        assert!((m.cpu_mem_ratio() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_vector_round_trips() {
        let m = ServerModel::x3550_m3();
        let c = m.capacity();
        assert_eq!(c.cpu_rpe2, m.cpu_rpe2);
        assert_eq!(c.mem_mb, m.mem_mb);
    }

    #[test]
    fn hs22_is_the_weaker_blade() {
        let old = ServerModel::hs22();
        let new = ServerModel::hs23_elite();
        assert!(old.cpu_rpe2 < new.cpu_rpe2);
        assert!(old.mem_mb < new.mem_mb);
        assert!(
            old.cpu_mem_ratio() > new.cpu_mem_ratio(),
            "less memory per RPE2"
        );
    }

    #[test]
    fn older_model_has_lower_ratio_headroom() {
        // The HS23's extended memory is the point: more memory per RPE2
        // than a standard rack box of the same era.
        assert!(
            ServerModel::hs23_elite().cpu_mem_ratio()
                < ServerModel::x3550_m3().cpu_mem_ratio() * 2.0
        );
    }
}
