//! Physical data-center substrate for the reproduction of *Virtual Machine
//! Consolidation in the Wild* (Middleware 2014).
//!
//! Consolidation planning packs virtual machines onto physical servers; this
//! crate models everything physical:
//!
//! * [`resources`] — the two-dimensional (CPU in RPE2, memory in MB)
//!   resource vector. The paper's planners optimise exactly these two
//!   resources ("CPU and memory are the only resources owned by a VM").
//! * [`rpe2`] — the IDEAS RPE2 relative-performance catalog, including the
//!   IBM HS23 Elite blade whose CPU/memory ratio of 160 anchors Fig 6.
//! * [`server`] — server models and the virtualisation-host catalog.
//! * [`vm`] — virtual machines (one per consolidated source server).
//! * [`datacenter`] — hosts, racks and subnets.
//! * [`power`] — the linear utilisation-based power model.
//! * [`cost`] — facilities (space + hardware) and energy cost models.
//! * [`constraints`] — the real-world deployment-constraint framework of
//!   §2.2.4 (affinity, anti-affinity, host and subnet pinning).
//!
//! # Example
//!
//! ```
//! use vmcw_cluster::server::ServerModel;
//!
//! let blade = ServerModel::hs23_elite();
//! assert!((blade.cpu_mem_ratio() - 160.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod cost;
pub mod datacenter;
pub mod power;
pub mod resources;
pub mod rpe2;
pub mod server;
pub mod vm;

pub use constraints::{Constraint, ConstraintSet};
pub use datacenter::{DataCenter, Host, HostId, HostLocation, RackId, SubnetId};
pub use power::{PowerCurve, PowerModel};
pub use resources::Resources;
pub use server::ServerModel;
pub use vm::{Vm, VmId};
