//! Virtual machines.
//!
//! In the paper's studies every non-virtualised source server becomes one
//! virtual machine ("the input traces capture the resource demand from
//! individual virtual machines on a server"). A [`Vm`] carries identity
//! and static metadata; its time-varying demand lives in the trace crate
//! and is attached by the consolidation planner.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A virtual machine (static metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Identifier, unique within a study.
    pub id: VmId,
    /// Human-readable name (usually the source server's name).
    pub name: String,
    /// Configured (virtual) memory in MB — the amount the hypervisor must
    /// copy on live migration. Committed demand is at most this.
    pub configured_mem_mb: f64,
}

impl Vm {
    /// Creates a VM.
    #[must_use]
    pub fn new(id: VmId, name: impl Into<String>, configured_mem_mb: f64) -> Self {
        Self {
            id,
            name: name.into(),
            configured_mem_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(VmId(7).to_string(), "vm-7");
    }

    #[test]
    fn construction() {
        let vm = Vm::new(VmId(1), "bank-0001", 8192.0);
        assert_eq!(vm.name, "bank-0001");
        assert_eq!(vm.configured_mem_mb, 8192.0);
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VmId(1));
        set.insert(VmId(1));
        set.insert(VmId(2));
        assert_eq!(set.len(), 2);
        assert!(VmId(1) < VmId(2));
    }
}
