//! Facilities and energy cost models.
//!
//! §5.3: "The most important cost parameter in a data center is the cost
//! of facilities and hardware. This cost is derived based on the number of
//! servers and their specifications, the size of the racks and their
//! occupancy, and the space cost of raised floor for the datacenter."
//!
//! [`FacilityCostModel`] implements exactly that decomposition; the
//! absolute coefficients are representative list prices (the paper never
//! reports absolute numbers — Fig 7 is normalised to the vanilla
//! semi-static planner, and our harness normalises the same way, so only
//! the *relative* weights matter).

use serde::{Deserialize, Serialize};

/// Space, hardware and energy cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacilityCostModel {
    /// Hardware cost of one server (amortised over the study horizon).
    pub server_cost: f64,
    /// Cost of one rack (chassis, PDU, cabling).
    pub rack_cost: f64,
    /// Raised-floor space cost per rack.
    pub floor_cost_per_rack: f64,
    /// Servers per rack.
    pub hosts_per_rack: u32,
    /// Energy price per kWh.
    pub price_per_kwh: f64,
}

impl FacilityCostModel {
    /// Representative defaults: a blade at 8k, a loaded chassis/rack at
    /// 12k, raised floor at 3k per rack position, 14 blades per rack,
    /// 0.10 per kWh.
    #[must_use]
    pub fn default_blades() -> Self {
        Self {
            server_cost: 8_000.0,
            rack_cost: 12_000.0,
            floor_cost_per_rack: 3_000.0,
            hosts_per_rack: 14,
            price_per_kwh: 0.10,
        }
    }

    /// Space-and-hardware cost of provisioning `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `hosts_per_rack` is zero.
    #[must_use]
    pub fn space_cost(&self, servers: usize) -> f64 {
        assert!(self.hosts_per_rack > 0, "hosts_per_rack must be positive");
        let racks = (servers as u32).div_ceil(self.hosts_per_rack) as f64;
        servers as f64 * self.server_cost + racks * (self.rack_cost + self.floor_cost_per_rack)
    }

    /// Energy cost for a total consumption in kWh.
    #[must_use]
    pub fn power_cost(&self, kwh: f64) -> f64 {
        kwh * self.price_per_kwh
    }
}

impl Default for FacilityCostModel {
    fn default() -> Self {
        Self::default_blades()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_cost_is_zero_for_empty_dc() {
        assert_eq!(FacilityCostModel::default().space_cost(0), 0.0);
    }

    #[test]
    fn space_cost_steps_at_rack_boundaries() {
        let m = FacilityCostModel {
            hosts_per_rack: 2,
            ..FacilityCostModel::default()
        };
        let one = m.space_cost(1);
        let two = m.space_cost(2);
        let three = m.space_cost(3);
        // Adding the 2nd server shares the rack; the 3rd opens a new one.
        assert!((two - one) < (three - two));
        assert_eq!(
            three - two,
            m.server_cost + m.rack_cost + m.floor_cost_per_rack
        );
    }

    #[test]
    fn space_cost_is_monotone() {
        let m = FacilityCostModel::default();
        let costs: Vec<f64> = (0..50).map(|n| m.space_cost(n)).collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1] || w[0] == 0.0));
    }

    #[test]
    fn power_cost_scales_with_energy() {
        let m = FacilityCostModel::default();
        assert!((m.power_cost(100.0) - 10.0).abs() < 1e-12);
    }
}
