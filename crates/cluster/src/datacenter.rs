//! Hosts, racks and subnets.
//!
//! A [`DataCenter`] is the pool of physical virtualisation hosts that a
//! consolidation plan places VMs onto. Hosts live in racks (which drive
//! the facilities cost model) and subnets (which participate in the
//! deployment-constraint framework of §2.2.4).

use crate::server::ServerModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical host within a data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// Identifier of a network subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubnetId(pub u16);

/// A physical virtualisation host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Identifier.
    pub id: HostId,
    /// Hardware model.
    pub model: ServerModel,
    /// Rack the host is mounted in.
    pub rack: RackId,
    /// Subnet the host is attached to.
    pub subnet: SubnetId,
}

impl Host {
    /// The host's placement-relevant location.
    #[must_use]
    pub fn location(&self) -> HostLocation {
        HostLocation {
            host: self.id,
            rack: self.rack,
            subnet: self.subnet,
        }
    }
}

/// Where a host sits in the data center — everything the deployment
/// constraints of §2.2.4 can refer to ("same host/subnet/rack").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostLocation {
    /// The host itself.
    pub host: HostId,
    /// Its rack.
    pub rack: RackId,
    /// Its subnet.
    pub subnet: SubnetId,
}

/// A pool of physical hosts.
///
/// Planners provision hosts on demand via [`DataCenter::provision`]; the
/// space-cost model then charges for the provisioned count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenter {
    template: ServerModel,
    hosts_per_rack: u32,
    subnet_count: u16,
    hosts: Vec<Host>,
}

impl DataCenter {
    /// Creates an empty data center that provisions hosts of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `hosts_per_rack` or `subnet_count` is zero.
    #[must_use]
    pub fn new(template: ServerModel, hosts_per_rack: u32, subnet_count: u16) -> Self {
        assert!(hosts_per_rack > 0, "a rack must hold at least one host");
        assert!(subnet_count > 0, "need at least one subnet");
        Self {
            template,
            hosts_per_rack,
            subnet_count,
            hosts: Vec::new(),
        }
    }

    /// Convenience: an HS23-Elite blade data center with 14 blades per
    /// chassis/rack and 4 subnets — the defaults used by the paper-scale
    /// studies.
    #[must_use]
    pub fn hs23_default() -> Self {
        Self::new(ServerModel::hs23_elite(), 14, 4)
    }

    /// Creates a data center with `n` hosts already provisioned.
    #[must_use]
    pub fn with_hosts(
        template: ServerModel,
        hosts_per_rack: u32,
        subnet_count: u16,
        n: u32,
    ) -> Self {
        let mut dc = Self::new(template, hosts_per_rack, subnet_count);
        for _ in 0..n {
            dc.provision();
        }
        dc
    }

    /// Creates a *heterogeneous* data center from an explicit inventory:
    /// `counts` of each model, in order. The first model doubles as the
    /// provisioning template should a planner grow the pool, but the
    /// fixed-pool packer ([`pack_fixed`]) never provisions — it answers
    /// the engagement question "does the existing estate hold this
    /// workload?".
    ///
    /// [`pack_fixed`]: https://docs.rs/vmcw-consolidation
    ///
    /// # Panics
    ///
    /// Panics if `inventory` is empty or holds no hosts.
    #[must_use]
    pub fn heterogeneous(
        inventory: &[(ServerModel, u32)],
        hosts_per_rack: u32,
        subnet_count: u16,
    ) -> Self {
        assert!(
            inventory.iter().map(|&(_, n)| n).sum::<u32>() > 0,
            "inventory must hold at least one host"
        );
        let mut dc = Self::new(inventory[0].0.clone(), hosts_per_rack, subnet_count);
        for (model, count) in inventory {
            for _ in 0..*count {
                dc.push_host(model.clone());
            }
        }
        dc
    }

    /// Appends one host of an explicit model (heterogeneous pools).
    pub fn push_host(&mut self, model: ServerModel) -> HostId {
        let idx = self.hosts.len() as u32;
        let id = HostId(idx);
        self.hosts.push(Host {
            id,
            model,
            rack: RackId(idx / self.hosts_per_rack),
            subnet: SubnetId((idx % u32::from(self.subnet_count)) as u16),
        });
        id
    }

    /// Whether every host shares the template's specification.
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.hosts.iter().all(|h| h.model == self.template)
    }

    /// The host hardware template.
    #[must_use]
    pub fn template(&self) -> &ServerModel {
        &self.template
    }

    /// Provisions one more host, assigning it to a rack (filled in order)
    /// and a subnet (round-robin). Returns the new host's id.
    pub fn provision(&mut self) -> HostId {
        let idx = self.hosts.len() as u32;
        let id = HostId(idx);
        self.hosts.push(Host {
            id,
            model: self.template.clone(),
            rack: RackId(idx / self.hosts_per_rack),
            subnet: SubnetId((idx % u32::from(self.subnet_count)) as u16),
        });
        id
    }

    /// Number of provisioned hosts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether no hosts are provisioned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Number of racks in use.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        (self.hosts.len() as u32).div_ceil(self.hosts_per_rack) as usize
    }

    /// Looks up a host by id.
    #[must_use]
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.get(id.0 as usize)
    }

    /// The location of a host, if provisioned.
    #[must_use]
    pub fn location(&self, id: HostId) -> Option<HostLocation> {
        self.host(id).map(Host::location)
    }

    /// Iterates over provisioned hosts.
    pub fn iter(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }
}

impl<'a> IntoIterator for &'a DataCenter {
    type Item = &'a Host;
    type IntoIter = std::slice::Iter<'a, Host>;
    fn into_iter(self) -> Self::IntoIter {
        self.hosts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_assigns_racks_and_subnets() {
        let mut dc = DataCenter::new(ServerModel::hs23_elite(), 2, 3);
        let ids: Vec<HostId> = (0..5).map(|_| dc.provision()).collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(dc.len(), 5);
        assert_eq!(dc.rack_count(), 3); // 2+2+1
        assert_eq!(dc.host(HostId(0)).unwrap().rack, RackId(0));
        assert_eq!(dc.host(HostId(2)).unwrap().rack, RackId(1));
        assert_eq!(dc.host(HostId(4)).unwrap().rack, RackId(2));
        assert_eq!(dc.host(HostId(0)).unwrap().subnet, SubnetId(0));
        assert_eq!(dc.host(HostId(3)).unwrap().subnet, SubnetId(0));
        assert_eq!(dc.host(HostId(4)).unwrap().subnet, SubnetId(1));
    }

    #[test]
    fn with_hosts_preprovisions() {
        let dc = DataCenter::with_hosts(ServerModel::hs23_elite(), 14, 4, 20);
        assert_eq!(dc.len(), 20);
        assert_eq!(dc.rack_count(), 2);
    }

    #[test]
    fn unknown_host_is_none() {
        let dc = DataCenter::hs23_default();
        assert!(dc.host(HostId(0)).is_none());
        assert!(dc.is_empty());
    }

    #[test]
    fn iteration_visits_all_hosts() {
        let dc = DataCenter::with_hosts(ServerModel::hs23_elite(), 14, 4, 3);
        assert_eq!(dc.iter().count(), 3);
        assert_eq!((&dc).into_iter().count(), 3);
    }

    #[test]
    fn heterogeneous_inventory() {
        let dc = DataCenter::heterogeneous(
            &[(ServerModel::hs23_elite(), 2), (ServerModel::x3550_m3(), 3)],
            4,
            2,
        );
        assert_eq!(dc.len(), 5);
        assert!(!dc.is_homogeneous());
        assert_eq!(dc.host(HostId(0)).unwrap().model.name, "hs23-elite");
        assert_eq!(dc.host(HostId(4)).unwrap().model.name, "x3550-m3");
        // Homogeneous pools report as such.
        let uniform = DataCenter::with_hosts(ServerModel::hs23_elite(), 4, 2, 3);
        assert!(uniform.is_homogeneous());
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_inventory_rejected() {
        let _ = DataCenter::heterogeneous(&[(ServerModel::hs23_elite(), 0)], 4, 2);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_rack_capacity_rejected() {
        let _ = DataCenter::new(ServerModel::hs23_elite(), 0, 1);
    }
}
