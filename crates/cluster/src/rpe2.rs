//! IDEAS RPE2 relative-performance estimates.
//!
//! The paper measures CPU demand in "IDEAS RPE2 Relative Server Performance
//! Estimate v2 \[22\], one of the most popular benchmarks for server compute
//! performance". RPE2 is a scalar rating per server model; demand in RPE2
//! units is `utilisation × rating`. The real RPE2 tables are licensed, so
//! this module carries a small catalog of plausible ratings for the server
//! generations found in 2012-era data centers, anchored on the one value
//! the paper pins down implicitly: the IBM HS23 Elite blade (2 sockets,
//! 128 GB) with a CPU/memory ratio of 160 RPE2 per GB, i.e. a rating of
//! 20480.

use serde::{Deserialize, Serialize};

/// RPE2 rating of the IBM HS23 Elite virtualisation blade.
///
/// Derived from Fig 6: "the CPU to memory ratio for a high-end blade
/// server is 160" with 128 GB of RAM ⇒ 160 × 128 = 20480.
pub const HS23_ELITE_RPE2: f64 = 20_480.0;

/// A catalog entry: a server generation and its RPE2 rating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rpe2Rating {
    /// Model name.
    pub model: &'static str,
    /// Release era (year).
    pub year: u16,
    /// RPE2 rating.
    pub rating: f64,
}

/// Plausible ratings for typical source-server generations.
///
/// Magnitudes follow the public structure of RPE2 tables (a 2006 2-socket
/// x86 box rates a few thousand; a 2012 virtualisation blade ~20k).
pub const CATALOG: [Rpe2Rating; 6] = [
    Rpe2Rating {
        model: "x3650-2006",
        year: 2006,
        rating: 2_400.0,
    },
    Rpe2Rating {
        model: "x3650-m2",
        year: 2008,
        rating: 4_100.0,
    },
    Rpe2Rating {
        model: "x3550-m3",
        year: 2010,
        rating: 6_300.0,
    },
    Rpe2Rating {
        model: "x3550-m4",
        year: 2012,
        rating: 8_600.0,
    },
    Rpe2Rating {
        model: "hs22",
        year: 2010,
        rating: 12_200.0,
    },
    Rpe2Rating {
        model: "hs23-elite",
        year: 2012,
        rating: HS23_ELITE_RPE2,
    },
];

/// Looks up a catalog rating by model name.
#[must_use]
pub fn rating_of(model: &str) -> Option<f64> {
    CATALOG.iter().find(|r| r.model == model).map(|r| r.rating)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hs23_anchor_value() {
        assert_eq!(rating_of("hs23-elite"), Some(HS23_ELITE_RPE2));
        assert_eq!(HS23_ELITE_RPE2 / 128.0, 160.0);
    }

    #[test]
    fn unknown_model_is_none() {
        assert_eq!(rating_of("cray-1"), None);
    }

    #[test]
    fn ratings_increase_with_year_within_rack_servers() {
        let rack: Vec<&Rpe2Rating> = CATALOG
            .iter()
            .filter(|r| r.model.starts_with('x'))
            .collect();
        assert!(rack
            .windows(2)
            .all(|w| w[0].year <= w[1].year && w[0].rating < w[1].rating));
    }
}
