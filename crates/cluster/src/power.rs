//! Server power model.
//!
//! Fig 7's power cost "is calculated based on the number of operational
//! servers and their utilization in a given consolidation interval". We
//! use the standard linear model (idle power plus a utilisation-
//! proportional term) that the paper's own prior work (pMapper \[25\],
//! BrownMap \[28\]) employs; switched-off servers draw nothing.

use serde::{Deserialize, Serialize};

/// How the utilisation-dependent part of the draw scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerCurve {
    /// Linear in utilisation — the model of pMapper \[25\] and most
    /// consolidation literature.
    Linear,
    /// SPECpower-style concave curve (`2u − u^1.4`): real servers draw
    /// disproportionately at low-to-mid utilisation, which *shrinks* the
    /// power advantage of consolidating onto fewer, busier hosts. The
    /// ablation benches quantify the effect on Fig 7.
    SpecLike,
}

/// Utilisation→power model for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle_w: f64,
    peak_w: f64,
    curve: PowerCurve,
}

impl PowerModel {
    /// Creates a linear power model (the baseline).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ idle_w ≤ peak_w`.
    #[must_use]
    pub fn new(idle_w: f64, peak_w: f64) -> Self {
        Self::with_curve(idle_w, peak_w, PowerCurve::Linear)
    }

    /// Creates a power model with an explicit curve shape.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ idle_w ≤ peak_w`.
    #[must_use]
    pub fn with_curve(idle_w: f64, peak_w: f64, curve: PowerCurve) -> Self {
        assert!(idle_w >= 0.0 && idle_w <= peak_w, "need 0 <= idle <= peak");
        Self {
            idle_w,
            peak_w,
            curve,
        }
    }

    /// Idle draw in watts.
    #[must_use]
    pub fn idle_w(&self) -> f64 {
        self.idle_w
    }

    /// Peak draw in watts.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.peak_w
    }

    /// The curve shape.
    #[must_use]
    pub fn curve(&self) -> PowerCurve {
        self.curve
    }

    /// Power draw at a CPU utilisation (clamped to `0..=1`; an overloaded
    /// server cannot draw more than peak).
    #[must_use]
    pub fn watts_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let shape = match self.curve {
            PowerCurve::Linear => u,
            // Concave: 2u − u^1.4 is 0 at u=0, 1 at u=1, above the
            // diagonal in between (clamped for safety).
            PowerCurve::SpecLike => (2.0 * u - u.powf(1.4)).clamp(0.0, 1.0),
        };
        self.idle_w + (self.peak_w - self.idle_w) * shape
    }

    /// Energy in kWh for running `hours` at a constant utilisation.
    #[must_use]
    pub fn kwh(&self, utilization: f64, hours: f64) -> f64 {
        self.watts_at(utilization) * hours / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let p = PowerModel::new(200.0, 400.0);
        assert_eq!(p.watts_at(0.0), 200.0);
        assert_eq!(p.watts_at(1.0), 400.0);
        assert_eq!(p.watts_at(0.5), 300.0);
        assert_eq!(p.idle_w(), 200.0);
        assert_eq!(p.peak_w(), 400.0);
    }

    #[test]
    fn overload_clamps_to_peak() {
        let p = PowerModel::new(200.0, 400.0);
        assert_eq!(p.watts_at(1.7), 400.0);
        assert_eq!(p.watts_at(-0.3), 200.0);
    }

    #[test]
    fn energy_integrates_hours() {
        let p = PowerModel::new(0.0, 1000.0);
        assert!((p.kwh(0.5, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle <= peak")]
    fn inverted_model_rejected() {
        let _ = PowerModel::new(500.0, 400.0);
    }

    #[test]
    fn spec_curve_shares_endpoints_and_sits_above_linear() {
        let linear = PowerModel::new(200.0, 400.0);
        let spec = PowerModel::with_curve(200.0, 400.0, PowerCurve::SpecLike);
        assert_eq!(spec.watts_at(0.0), linear.watts_at(0.0));
        assert!((spec.watts_at(1.0) - linear.watts_at(1.0)).abs() < 1e-9);
        for u in [0.2, 0.5, 0.8] {
            assert!(
                spec.watts_at(u) > linear.watts_at(u),
                "concave curve above linear at {u}"
            );
        }
        assert_eq!(spec.curve(), PowerCurve::SpecLike);
        assert_eq!(linear.curve(), PowerCurve::Linear);
    }

    #[test]
    fn spec_curve_is_monotone() {
        let spec = PowerModel::with_curve(100.0, 300.0, PowerCurve::SpecLike);
        let mut prev = spec.watts_at(0.0);
        for i in 1..=20 {
            let w = spec.watts_at(f64::from(i) / 20.0);
            assert!(w >= prev - 1e-9);
            prev = w;
        }
    }
}
