//! Application resource models.
//!
//! The paper validates its emulator with RuBiS and daxpy and motivates the
//! memory/CPU burstiness gap with an Olio measurement (§4.1: "we varied
//! the throughput for Olio ... from 10 to 60 operations/sec ... CPU demand
//! increased from 0.18 core to 1.42 cores (7.9X increase), whereas the
//! memory demand only increased by 3X"). Those benchmarks are not
//! redistributable, so this module provides analytic stand-ins with the
//! same calibration:
//!
//! * [`WebAppModel`] — power-law throughput→resource curves; the
//!   [`WebAppModel::olio`] instance reproduces the 7.9×/3× numbers.
//! * [`BatchKernelModel`] — a daxpy-like kernel: CPU is whatever you give
//!   it, memory is the vector working set.
//! * [`MicroBenchmark`] — the "filler" of §5.2 that consumes a specified
//!   amount of CPU or memory (with small measurement noise).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Power-law resource model of a request-driven web application:
/// `resource(t) = coeff × t^exponent` for throughput `t` in ops/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebAppModel {
    /// CPU coefficient (cores at 1 op/s).
    pub cpu_coeff: f64,
    /// CPU exponent (slightly superlinear: context switching, GC).
    pub cpu_exponent: f64,
    /// Memory coefficient (MB at 1 op/s).
    pub mem_coeff: f64,
    /// Memory exponent (sublinear: shared caches, pooled sessions).
    pub mem_exponent: f64,
}

impl WebAppModel {
    /// Olio calibration: 0.18 cores at 10 ops/s, 1.42 cores at 60 ops/s
    /// (7.9×), memory 3× over the same 6× throughput range.
    #[must_use]
    pub fn olio() -> Self {
        Self {
            cpu_coeff: 0.012_76,
            cpu_exponent: 1.15,
            mem_coeff: 85.4,
            mem_exponent: (3.0_f64).ln() / (6.0_f64).ln(),
        }
    }

    /// A RuBiS-like auction site: closer-to-linear CPU, flatter memory.
    #[must_use]
    pub fn rubis() -> Self {
        Self {
            cpu_coeff: 0.02,
            cpu_exponent: 1.05,
            mem_coeff: 120.0,
            mem_exponent: 0.5,
        }
    }

    /// CPU demand in cores at `ops` operations per second.
    #[must_use]
    pub fn cpu_cores(&self, ops: f64) -> f64 {
        self.cpu_coeff * ops.max(0.0).powf(self.cpu_exponent)
    }

    /// Memory demand in MB at `ops` operations per second.
    #[must_use]
    pub fn mem_mb(&self, ops: f64) -> f64 {
        self.mem_coeff * ops.max(0.0).powf(self.mem_exponent)
    }

    /// The throughput that saturates `cores` CPU cores (inverse of
    /// [`WebAppModel::cpu_cores`]).
    #[must_use]
    pub fn ops_at_cpu(&self, cores: f64) -> f64 {
        if cores <= 0.0 {
            0.0
        } else {
            (cores / self.cpu_coeff).powf(1.0 / self.cpu_exponent)
        }
    }
}

/// A daxpy-like batch kernel: compute-bound with a fixed working set per
/// problem size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchKernelModel {
    /// Bytes per vector element (daxpy touches two f64 vectors: 16).
    pub bytes_per_element: f64,
}

impl BatchKernelModel {
    /// The daxpy kernel.
    #[must_use]
    pub fn daxpy() -> Self {
        Self {
            bytes_per_element: 16.0,
        }
    }

    /// Memory in MB for a problem of `n` elements.
    #[must_use]
    pub fn mem_mb(&self, n: u64) -> f64 {
        self.bytes_per_element * n as f64 / (1024.0 * 1024.0)
    }

    /// CPU demand: daxpy saturates however many cores it is given.
    #[must_use]
    pub fn cpu_cores(&self, cores_requested: f64) -> f64 {
        cores_requested.max(0.0)
    }
}

/// The micro-benchmark "filler" of §5.2: "a micro-benchmark that can use
/// either a specified amount of memory or consume a specific number of
/// cores". Consumption carries small multiplicative measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroBenchmark {
    /// Relative noise (standard deviation) on achieved consumption.
    pub noise_rel_std: f64,
}

impl MicroBenchmark {
    /// A well-behaved filler: 1% relative noise.
    #[must_use]
    pub fn precise() -> Self {
        Self {
            noise_rel_std: 0.01,
        }
    }

    /// Consumes `target` units (cores or MB), returning the achieved
    /// consumption under measurement noise. Never negative.
    pub fn consume<R: Rng + ?Sized>(&self, rng: &mut R, target: f64) -> f64 {
        let noisy = target * (1.0 + vmcw_trace::synth::gaussian(rng, 0.0, self.noise_rel_std));
        noisy.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn olio_matches_paper_calibration() {
        let m = WebAppModel::olio();
        let cpu10 = m.cpu_cores(10.0);
        let cpu60 = m.cpu_cores(60.0);
        assert!((cpu10 - 0.18).abs() < 0.01, "cpu@10 = {cpu10}");
        assert!((cpu60 - 1.42).abs() < 0.03, "cpu@60 = {cpu60}");
        let cpu_ratio = cpu60 / cpu10;
        assert!((cpu_ratio - 7.9).abs() < 0.2, "cpu ratio {cpu_ratio}");
        let mem_ratio = m.mem_mb(60.0) / m.mem_mb(10.0);
        assert!((mem_ratio - 3.0).abs() < 0.05, "mem ratio {mem_ratio}");
    }

    #[test]
    fn memory_grows_slower_than_cpu() {
        for model in [WebAppModel::olio(), WebAppModel::rubis()] {
            let cpu_ratio = model.cpu_cores(80.0) / model.cpu_cores(10.0);
            let mem_ratio = model.mem_mb(80.0) / model.mem_mb(10.0);
            assert!(cpu_ratio > mem_ratio);
        }
    }

    #[test]
    fn ops_at_cpu_inverts_cpu_cores() {
        let m = WebAppModel::olio();
        for ops in [5.0, 20.0, 55.0] {
            let round_trip = m.ops_at_cpu(m.cpu_cores(ops));
            assert!((round_trip - ops).abs() < 1e-9);
        }
        assert_eq!(m.ops_at_cpu(0.0), 0.0);
    }

    #[test]
    fn daxpy_memory_is_working_set() {
        let k = BatchKernelModel::daxpy();
        // 1 M elements × 16 B ≈ 15.26 MB.
        assert!((k.mem_mb(1_000_000) - 15.26).abs() < 0.01);
        assert_eq!(k.cpu_cores(2.0), 2.0);
        assert_eq!(k.cpu_cores(-1.0), 0.0);
    }

    #[test]
    fn filler_tracks_target_with_noise() {
        let f = MicroBenchmark::precise();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..5000).map(|_| f.consume(&mut rng, 100.0)).collect();
        let mean = vmcw_trace::stats::mean(&samples).unwrap();
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!(samples.iter().all(|&s| s >= 0.0));
    }
}
