//! Crash-safe replay checkpoints.
//!
//! A [`ReplayCheckpoint`] captures the complete mutable state of a
//! [`Replay`](crate::engine::Replay) at an hour boundary — accumulators,
//! per-hour series, fault bookkeeping (in-effect placement, crashed
//! hosts, down VMs), last-good sample holds, and the next hour to replay
//! — so an interrupted study can resume and produce a report
//! *bit-identical* to an uninterrupted run. The keyed fault streams of
//! [`faults`](crate::faults) carry no RNG state, so recording the seed
//! (via the resume fingerprint) is all the "RNG stream position" a
//! checkpoint needs.
//!
//! The wire format is a versioned, line-oriented text encoding. Every
//! `f64` is written as the hexadecimal of its IEEE-754 bit pattern, so a
//! decode→encode round trip is byte-exact and resumed arithmetic starts
//! from the *same bits* the interrupted run held. Decoding is strict:
//! any malformed token yields a [`CheckpointError::Corrupt`] carrying the
//! byte offset of the offending line, and nothing is handed to the
//! engine.

use std::error::Error;
use std::fmt;
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

use crate::engine::HourSummary;
use crate::faults::{FaultConfig, FaultLedger};
use crate::validate::InvariantViolation;

/// Version of the checkpoint / report wire format.
pub const FORMAT_VERSION: u32 = 1;

/// Errors raised when decoding, validating, or resuming from a
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The payload is malformed; `offset` is the byte offset of the
    /// offending line within the payload (or journal record).
    Corrupt {
        /// Byte offset of the line that failed to parse.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// The checkpoint was written by an incompatible format version.
    Version {
        /// The version found in the payload.
        found: u32,
    },
    /// The checkpoint does not belong to the plan/config being resumed
    /// (wrong fingerprint, host count, hour range, ...).
    Mismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A replay invariant was violated at a checkpoint boundary.
    Invariant(InvariantViolation),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Corrupt { offset, detail } => {
                write!(f, "corrupt checkpoint at byte offset {offset}: {detail}")
            }
            CheckpointError::Version { found } => write!(
                f,
                "checkpoint format v{found} is not supported (expected v{FORMAT_VERSION})"
            ),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
            CheckpointError::Invariant(v) => v.fmt(f),
        }
    }
}

impl Error for CheckpointError {}

impl From<InvariantViolation> for CheckpointError {
    fn from(v: InvariantViolation) -> Self {
        CheckpointError::Invariant(v)
    }
}

/// Frozen per-host accumulator state (mirrors the engine's internal
/// accumulator; converted back losslessly on resume).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostAccState {
    /// Hours the host was powered on so far.
    pub active_hours: usize,
    /// Sum of hourly CPU utilisations over active hours.
    pub cpu_util_sum: f64,
    /// Sum of hourly memory utilisations over active hours.
    pub mem_util_sum: f64,
    /// Peak CPU utilisation so far.
    pub peak_cpu: f64,
    /// Peak memory utilisation so far.
    pub peak_mem: f64,
    /// Hours with contention so far.
    pub contention_hours: usize,
    /// Hours beyond the reliability thresholds so far.
    pub unreliable_hours: usize,
}

/// Frozen fault-replay bookkeeping (present only for faulted replays).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStateCheckpoint {
    /// The in-effect placement, as per-host VM lists in the engine's
    /// exact storage order (order matters: it fixes the f64 summation
    /// order, hence bit-identity).
    pub current: Vec<(HostId, Vec<VmId>)>,
    /// Per-host down flag as of the captured hour.
    pub was_down: Vec<bool>,
    /// VMs resident on a crashed host, awaiting evacuation or repair.
    pub down_vms: Vec<VmId>,
}

/// Complete replay state at an hour boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// Fingerprint of (plan, emulator config, fault config); resume
    /// refuses a checkpoint whose fingerprint differs.
    pub fingerprint: u64,
    /// The next hour to replay (hours `0..hour` are already folded in).
    pub hour: usize,
    /// Total evaluation hours of the run.
    pub total_hours: usize,
    /// Fault tally so far.
    pub ledger: FaultLedger,
    /// Energy accumulated so far, Wh.
    pub energy_wh: f64,
    /// Per-host accumulators (one per provisioned host).
    pub accs: Vec<HostAccState>,
    /// Per-hour summaries for hours `0..hour`.
    pub per_hour: Vec<HourSummary>,
    /// CPU contention samples collected so far.
    pub cpu_contention_samples: Vec<f64>,
    /// Last good sample and staleness per VM (dropout survival state).
    pub last_good: Vec<(VmId, Resources, usize)>,
    /// Fault bookkeeping, if the replay runs under fault injection.
    pub fault: Option<FaultStateCheckpoint>,
}

// --- wire helpers ---------------------------------------------------------

/// Encodes an `f64` as the hex of its IEEE-754 bits — the wire form that
/// makes decode→encode byte-exact.
#[must_use]
pub fn enc_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// FNV-1a 64-bit hash, used for resume fingerprints and report digests.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Line cursor over a payload, tracking the byte offset of the current
/// line so decode errors can name where the corruption sits.
pub struct Lines<'a> {
    rest: &'a str,
    offset: usize,
}

impl<'a> Lines<'a> {
    /// Starts reading `payload` from its first line.
    #[must_use]
    pub fn new(payload: &'a str) -> Self {
        Self {
            rest: payload,
            offset: 0,
        }
    }

    /// Byte offset of the next unread line.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// A [`CheckpointError::Corrupt`] at the current offset.
    pub fn corrupt(&self, detail: impl Into<String>) -> CheckpointError {
        CheckpointError::Corrupt {
            offset: self.offset,
            detail: detail.into(),
        }
    }

    /// The next line.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] at end of payload.
    pub fn next_line(&mut self) -> Result<&'a str, CheckpointError> {
        if self.rest.is_empty() {
            return Err(self.corrupt("unexpected end of payload"));
        }
        let (line, consumed) = match self.rest.find('\n') {
            Some(i) => (&self.rest[..i], i + 1),
            None => (self.rest, self.rest.len()),
        };
        self.offset += consumed;
        self.rest = &self.rest[consumed..];
        Ok(line)
    }

    /// Reads a line and asserts its first token, returning the remaining
    /// tokens.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if the line is missing or starts with
    /// a different keyword.
    pub fn expect(&mut self, keyword: &str) -> Result<Toks<'a>, CheckpointError> {
        let at = self.offset;
        let line = self.next_line()?;
        let mut toks = Toks::new(line, at);
        let head = toks.str()?;
        if head != keyword {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("expected `{keyword}`, found `{head}`"),
            });
        }
        Ok(toks)
    }
}

/// Whitespace token cursor over one line of the wire format. Every
/// accessor fails with [`CheckpointError::Corrupt`] carrying the line's
/// byte offset.
pub struct Toks<'a> {
    it: std::str::SplitAsciiWhitespace<'a>,
    line_offset: usize,
}

#[allow(missing_docs, clippy::missing_errors_doc)]
impl<'a> Toks<'a> {
    /// Tokenises `line`, reporting errors at `line_offset`.
    #[must_use]
    pub fn new(line: &'a str, line_offset: usize) -> Self {
        Self {
            it: line.split_ascii_whitespace(),
            line_offset,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> CheckpointError {
        CheckpointError::Corrupt {
            offset: self.line_offset,
            detail: detail.into(),
        }
    }

    pub fn str(&mut self) -> Result<&'a str, CheckpointError> {
        self.it.next().ok_or_else(|| self.corrupt("missing token"))
    }

    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        let t = self.str()?;
        t.parse()
            .map_err(|_| self.corrupt(format!("bad integer `{t}`")))
    }

    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let t = self.str()?;
        t.parse()
            .map_err(|_| self.corrupt(format!("bad integer `{t}`")))
    }

    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let t = self.str()?;
        t.parse()
            .map_err(|_| self.corrupt(format!("bad integer `{t}`")))
    }

    pub fn u64_hex(&mut self) -> Result<u64, CheckpointError> {
        let t = self.str()?;
        u64::from_str_radix(t, 16).map_err(|_| self.corrupt(format!("bad hex `{t}`")))
    }

    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64_hex()?))
    }
}

// --- checkpoint encoding --------------------------------------------------

impl ReplayCheckpoint {
    /// Serialises to the versioned wire format.
    #[must_use]
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(o, "ckpt v{FORMAT_VERSION}");
        let _ = writeln!(o, "fp {:016x}", self.fingerprint);
        let _ = writeln!(o, "hour {} of {}", self.hour, self.total_hours);
        let _ = writeln!(o, "energy {}", enc_f64(self.energy_wh));
        let _ = writeln!(o, "ledger {}", encode_ledger(&self.ledger));
        let _ = writeln!(o, "accs {}", self.accs.len());
        for a in &self.accs {
            let _ = writeln!(
                o,
                "a {} {} {} {} {} {} {}",
                a.active_hours,
                enc_f64(a.cpu_util_sum),
                enc_f64(a.mem_util_sum),
                enc_f64(a.peak_cpu),
                enc_f64(a.peak_mem),
                a.contention_hours,
                a.unreliable_hours
            );
        }
        let _ = writeln!(o, "hours {}", self.per_hour.len());
        for h in &self.per_hour {
            let _ = writeln!(
                o,
                "h {} {} {} {} {} {}",
                h.hour,
                h.active_hosts,
                enc_f64(h.watts),
                h.contended_hosts,
                enc_f64(h.cpu_contention),
                enc_f64(h.mem_contention)
            );
        }
        let _ = write!(o, "samples {}", self.cpu_contention_samples.len());
        for s in &self.cpu_contention_samples {
            let _ = write!(o, " {}", enc_f64(*s));
        }
        o.push('\n');
        let _ = writeln!(o, "lastgood {}", self.last_good.len());
        for (vm, r, stale) in &self.last_good {
            let _ = writeln!(
                o,
                "g {} {} {} {}",
                vm.0,
                enc_f64(r.cpu_rpe2),
                enc_f64(r.mem_mb),
                stale
            );
        }
        match &self.fault {
            None => {
                let _ = writeln!(o, "faults 0");
            }
            Some(fs) => {
                let _ = writeln!(o, "faults 1");
                let _ = writeln!(o, "current {}", fs.current.len());
                for (host, vms) in &fs.current {
                    let _ = write!(o, "c {} {}", host.0, vms.len());
                    for vm in vms {
                        let _ = write!(o, " {}", vm.0);
                    }
                    o.push('\n');
                }
                let down: String = fs
                    .was_down
                    .iter()
                    .map(|&d| if d { '1' } else { '0' })
                    .collect();
                let _ = writeln!(o, "wasdown {down}");
                let _ = write!(o, "downvms {}", fs.down_vms.len());
                for vm in &fs.down_vms {
                    let _ = write!(o, " {}", vm.0);
                }
                o.push('\n');
            }
        }
        o.push_str("end\n");
        o
    }

    /// Decodes the wire format.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] (with the byte offset of the bad
    /// line) for malformed payloads, [`CheckpointError::Version`] for
    /// unsupported versions.
    pub fn decode(payload: &str) -> Result<Self, CheckpointError> {
        let mut lines = Lines::new(payload);
        let mut head = lines.expect("ckpt")?;
        let v = head.str()?;
        let found: u32 = v
            .strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| lines.corrupt(format!("bad version token `{v}`")))?;
        if found != FORMAT_VERSION {
            return Err(CheckpointError::Version { found });
        }
        let fingerprint = lines.expect("fp")?.u64_hex()?;
        let mut t = lines.expect("hour")?;
        let hour = t.usize()?;
        let of = t.str()?;
        if of != "of" {
            return Err(lines.corrupt("malformed hour line"));
        }
        let total_hours = t.usize()?;
        let energy_wh = lines.expect("energy")?.f64()?;
        let mut t = lines.expect("ledger")?;
        let ledger = decode_ledger(&mut t)?;
        let n_accs = lines.expect("accs")?.usize()?;
        let mut accs = Vec::with_capacity(n_accs);
        for _ in 0..n_accs {
            let mut t = lines.expect("a")?;
            accs.push(HostAccState {
                active_hours: t.usize()?,
                cpu_util_sum: t.f64()?,
                mem_util_sum: t.f64()?,
                peak_cpu: t.f64()?,
                peak_mem: t.f64()?,
                contention_hours: t.usize()?,
                unreliable_hours: t.usize()?,
            });
        }
        let n_hours = lines.expect("hours")?.usize()?;
        let mut per_hour = Vec::with_capacity(n_hours);
        for _ in 0..n_hours {
            let mut t = lines.expect("h")?;
            per_hour.push(HourSummary {
                hour: t.usize()?,
                active_hosts: t.usize()?,
                watts: t.f64()?,
                contended_hosts: t.usize()?,
                cpu_contention: t.f64()?,
                mem_contention: t.f64()?,
            });
        }
        let mut t = lines.expect("samples")?;
        let n_samples = t.usize()?;
        let mut cpu_contention_samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            cpu_contention_samples.push(t.f64()?);
        }
        let n_good = lines.expect("lastgood")?.usize()?;
        let mut last_good = Vec::with_capacity(n_good);
        for _ in 0..n_good {
            let mut t = lines.expect("g")?;
            last_good.push((
                VmId(t.u32()?),
                Resources::new(t.f64()?, t.f64()?),
                t.usize()?,
            ));
        }
        let fault = match lines.expect("faults")?.usize()? {
            0 => None,
            1 => {
                let n_hosts = lines.expect("current")?.usize()?;
                let mut current = Vec::with_capacity(n_hosts);
                for _ in 0..n_hosts {
                    let mut t = lines.expect("c")?;
                    let host = HostId(t.u32()?);
                    let k = t.usize()?;
                    let mut vms = Vec::with_capacity(k);
                    for _ in 0..k {
                        vms.push(VmId(t.u32()?));
                    }
                    current.push((host, vms));
                }
                let down_line = lines.expect("wasdown")?;
                let mut was_down = Vec::new();
                {
                    let mut toks = down_line;
                    // A single token of '0'/'1' characters; empty fleet
                    // encodes as a missing token.
                    if let Ok(bits) = toks.str() {
                        for c in bits.chars() {
                            match c {
                                '0' => was_down.push(false),
                                '1' => was_down.push(true),
                                _ => return Err(lines.corrupt("bad wasdown bit")),
                            }
                        }
                    }
                }
                let mut t = lines.expect("downvms")?;
                let k = t.usize()?;
                let mut down_vms = Vec::with_capacity(k);
                for _ in 0..k {
                    down_vms.push(VmId(t.u32()?));
                }
                Some(FaultStateCheckpoint {
                    current,
                    was_down,
                    down_vms,
                })
            }
            other => return Err(lines.corrupt(format!("bad faults flag {other}"))),
        };
        lines.expect("end")?;
        Ok(Self {
            fingerprint,
            hour,
            total_hours,
            ledger,
            energy_wh,
            accs,
            per_hour,
            cpu_contention_samples,
            last_good,
            fault,
        })
    }
}

fn encode_ledger(l: &FaultLedger) -> String {
    format!(
        "{} {} {} {} {} {} {}",
        l.host_crashes,
        l.evacuations,
        l.downtime_vm_hours,
        l.failed_migrations,
        l.retried_migrations,
        l.abandoned_migrations,
        l.stale_sample_hours
    )
}

fn decode_ledger(t: &mut Toks<'_>) -> Result<FaultLedger, CheckpointError> {
    Ok(FaultLedger {
        host_crashes: t.usize()?,
        evacuations: t.usize()?,
        downtime_vm_hours: t.usize()?,
        failed_migrations: t.usize()?,
        retried_migrations: t.usize()?,
        abandoned_migrations: t.usize()?,
        stale_sample_hours: t.usize()?,
    })
}

// --- report / cost encoding ----------------------------------------------

/// Canonical byte encoding of an [`EmulationReport`]
/// (`EmulationReport::decode(encode(r)) == r`, bit-for-bit on every
/// float). Studies journal completed cells in this form and the resume
/// golden tests compare these bytes directly.
///
/// [`EmulationReport`]: crate::engine::EmulationReport
#[must_use]
pub fn encode_report(r: &crate::engine::EmulationReport) -> String {
    use std::fmt::Write as _;
    let mut o = String::new();
    let _ = writeln!(o, "report v{FORMAT_VERSION}");
    let _ = writeln!(o, "planner {}", r.planner.label());
    let _ = writeln!(o, "hours {} provisioned {}", r.hours, r.provisioned_hosts);
    let _ = writeln!(o, "energy {}", enc_f64(r.energy_kwh));
    let _ = writeln!(o, "migrations {} failed {}", r.migrations, r.failed_migrations);
    let _ = writeln!(o, "ledger {}", encode_ledger(&r.faults));
    let _ = writeln!(o, "perhost {}", r.per_host.len());
    for h in &r.per_host {
        let _ = writeln!(
            o,
            "s {} {} {} {} {} {} {} {}",
            h.host.0,
            h.active_hours,
            enc_f64(h.avg_cpu_util),
            enc_f64(h.peak_cpu_util),
            enc_f64(h.avg_mem_util),
            enc_f64(h.peak_mem_util),
            h.contention_hours,
            h.unreliable_hours
        );
    }
    let _ = writeln!(o, "perhour {}", r.per_hour.len());
    for h in &r.per_hour {
        let _ = writeln!(
            o,
            "h {} {} {} {} {} {}",
            h.hour,
            h.active_hosts,
            enc_f64(h.watts),
            h.contended_hosts,
            enc_f64(h.cpu_contention),
            enc_f64(h.mem_contention)
        );
    }
    let _ = write!(o, "samples {}", r.cpu_contention_samples.len());
    for s in &r.cpu_contention_samples {
        let _ = write!(o, " {}", enc_f64(*s));
    }
    o.push('\n');
    o.push_str("end\n");
    o
}

/// Decodes [`encode_report`] output.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] / [`CheckpointError::Version`] as for
/// checkpoints.
pub fn decode_report(payload: &str) -> Result<crate::engine::EmulationReport, CheckpointError> {
    use crate::engine::{EmulationReport, HostSummary};
    let mut lines = Lines::new(payload);
    let mut head = lines.expect("report")?;
    let v = head.str()?;
    let found: u32 = v
        .strip_prefix('v')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| lines.corrupt(format!("bad version token `{v}`")))?;
    if found != FORMAT_VERSION {
        return Err(CheckpointError::Version { found });
    }
    let label = lines.expect("planner")?.str()?.to_owned();
    let planner = vmcw_consolidation::planner::PlannerKind::parse(&label)
        .ok_or_else(|| lines.corrupt(format!("unknown planner `{label}`")))?;
    let mut t = lines.expect("hours")?;
    let hours = t.usize()?;
    let _ = t.str()?; // "provisioned"
    let provisioned_hosts = t.usize()?;
    let energy_kwh = lines.expect("energy")?.f64()?;
    let mut t = lines.expect("migrations")?;
    let migrations = t.usize()?;
    let _ = t.str()?; // "failed"
    let failed_migrations = t.usize()?;
    let mut t = lines.expect("ledger")?;
    let faults = decode_ledger(&mut t)?;
    let n = lines.expect("perhost")?.usize()?;
    let mut per_host = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = lines.expect("s")?;
        per_host.push(HostSummary {
            host: HostId(t.u32()?),
            active_hours: t.usize()?,
            avg_cpu_util: t.f64()?,
            peak_cpu_util: t.f64()?,
            avg_mem_util: t.f64()?,
            peak_mem_util: t.f64()?,
            contention_hours: t.usize()?,
            unreliable_hours: t.usize()?,
        });
    }
    let n = lines.expect("perhour")?.usize()?;
    let mut per_hour = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = lines.expect("h")?;
        per_hour.push(HourSummary {
            hour: t.usize()?,
            active_hosts: t.usize()?,
            watts: t.f64()?,
            contended_hosts: t.usize()?,
            cpu_contention: t.f64()?,
            mem_contention: t.f64()?,
        });
    }
    let mut t = lines.expect("samples")?;
    let n = t.usize()?;
    let mut cpu_contention_samples = Vec::with_capacity(n);
    for _ in 0..n {
        cpu_contention_samples.push(t.f64()?);
    }
    lines.expect("end")?;
    Ok(EmulationReport {
        planner,
        hours,
        provisioned_hosts,
        per_host,
        per_hour,
        energy_kwh,
        cpu_contention_samples,
        migrations,
        failed_migrations,
        faults,
    })
}

/// Single-line encoding of a [`CostSummary`](crate::report::CostSummary)
/// (bit-exact, as [`enc_f64`]).
#[must_use]
pub fn encode_cost(c: &crate::report::CostSummary) -> String {
    format!(
        "cost {} {} {} {}",
        c.provisioned_hosts,
        enc_f64(c.space_cost),
        enc_f64(c.energy_kwh),
        enc_f64(c.power_cost)
    )
}

/// Decodes [`encode_cost`] output.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] on malformed payloads.
pub fn decode_cost(line: &str) -> Result<crate::report::CostSummary, CheckpointError> {
    let mut t = Toks::new(line, 0);
    let head = t.str()?;
    if head != "cost" {
        return Err(CheckpointError::Corrupt {
            offset: 0,
            detail: format!("expected `cost`, found `{head}`"),
        });
    }
    Ok(crate::report::CostSummary {
        provisioned_hosts: t.usize()?,
        space_cost: t.f64()?,
        energy_kwh: t.f64()?,
        power_cost: t.f64()?,
    })
}

/// Single-line encoding of a [`FaultConfig`] (used in study journals and
/// resume fingerprints).
#[must_use]
pub fn encode_fault_config(f: &FaultConfig) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {}",
        f.seed,
        enc_f64(f.host_mtbf_hours),
        enc_f64(f.host_mttr_hours),
        enc_f64(f.migration_failure_prob),
        u8::from(f.enforce_reliability_thresholds),
        enc_f64(f.trace_dropout_prob),
        f.max_stale_hours,
        enc_f64(f.evacuation_bounds.0),
        enc_f64(f.evacuation_bounds.1),
        f.retry.max_attempts,
        enc_f64(f.retry.base_backoff_secs),
        enc_f64(f.retry.backoff_factor),
        enc_f64(f.retry.timeout_budget_secs),
    )
}

/// Decodes [`encode_fault_config`] output from a token cursor.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] on malformed tokens or an invalid
/// resulting configuration.
pub fn decode_fault_config(t: &mut Toks<'_>) -> Result<FaultConfig, CheckpointError> {
    let mut f = FaultConfig::disabled();
    f.seed = t.u64()?;
    f.host_mtbf_hours = t.f64()?;
    f.host_mttr_hours = t.f64()?;
    f.migration_failure_prob = t.f64()?;
    f.enforce_reliability_thresholds = t.usize()? != 0;
    f.trace_dropout_prob = t.f64()?;
    f.max_stale_hours = t.usize()?;
    f.evacuation_bounds = (t.f64()?, t.f64()?);
    f.retry.max_attempts = t.u32()?;
    f.retry.base_backoff_secs = t.f64()?;
    f.retry.backoff_factor = t.f64()?;
    f.retry.timeout_budget_secs = t.f64()?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> ReplayCheckpoint {
        ReplayCheckpoint {
            fingerprint: 0xdead_beef_1234_5678,
            hour: 3,
            total_hours: 72,
            ledger: FaultLedger {
                host_crashes: 1,
                stale_sample_hours: 4,
                ..FaultLedger::default()
            },
            energy_wh: 1234.5678,
            accs: vec![
                HostAccState {
                    active_hours: 3,
                    cpu_util_sum: 1.25,
                    mem_util_sum: 0.5,
                    peak_cpu: 0.9,
                    peak_mem: 0.4,
                    contention_hours: 0,
                    unreliable_hours: 1,
                },
                HostAccState {
                    active_hours: 0,
                    cpu_util_sum: 0.0,
                    mem_util_sum: 0.0,
                    peak_cpu: 0.0,
                    peak_mem: 0.0,
                    contention_hours: 0,
                    unreliable_hours: 0,
                },
            ],
            per_hour: vec![HourSummary {
                hour: 0,
                active_hosts: 2,
                watts: 700.25,
                contended_hosts: 0,
                cpu_contention: 0.0,
                mem_contention: 0.0,
            }],
            cpu_contention_samples: vec![0.125, f64::MIN_POSITIVE],
            last_good: vec![(VmId(7), Resources::new(12.5, 800.0), 2)],
            fault: Some(FaultStateCheckpoint {
                current: vec![(HostId(0), vec![VmId(7), VmId(2)]), (HostId(1), vec![VmId(1)])],
                was_down: vec![false, true],
                down_vms: vec![VmId(1)],
            }),
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let c = sample_checkpoint();
        let wire = c.encode();
        let d = ReplayCheckpoint::decode(&wire).unwrap();
        assert_eq!(c, d);
        // Re-encoding yields the identical bytes.
        assert_eq!(wire, d.encode());
    }

    #[test]
    fn plain_checkpoint_without_faults_round_trips() {
        let mut c = sample_checkpoint();
        c.fault = None;
        c.last_good.clear();
        let d = ReplayCheckpoint::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn truncated_checkpoint_reports_offset() {
        let wire = sample_checkpoint().encode();
        let cut = &wire[..wire.len() / 2];
        let err = ReplayCheckpoint::decode(cut).unwrap_err();
        match err {
            CheckpointError::Corrupt { offset, .. } => assert!(offset <= cut.len()),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_token_reports_offset_of_its_line() {
        let wire = sample_checkpoint().encode();
        let bad = wire.replace("energy", "enemy");
        let err = ReplayCheckpoint::decode(&bad).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("byte offset"));
    }

    #[test]
    fn future_version_is_rejected() {
        let wire = sample_checkpoint().encode().replace("ckpt v1", "ckpt v9");
        assert_eq!(
            ReplayCheckpoint::decode(&wire).unwrap_err(),
            CheckpointError::Version { found: 9 }
        );
    }

    #[test]
    fn nan_and_negative_zero_survive_round_trip() {
        let mut c = sample_checkpoint();
        c.cpu_contention_samples = vec![-0.0, f64::NAN, f64::INFINITY];
        let d = ReplayCheckpoint::decode(&c.encode()).unwrap();
        assert_eq!(
            c.cpu_contention_samples[0].to_bits(),
            d.cpu_contention_samples[0].to_bits()
        );
        assert_eq!(
            c.cpu_contention_samples[1].to_bits(),
            d.cpu_contention_samples[1].to_bits()
        );
        assert_eq!(
            c.cpu_contention_samples[2].to_bits(),
            d.cpu_contention_samples[2].to_bits()
        );
    }

    #[test]
    fn fault_config_round_trips() {
        let f = FaultConfig::baseline(99);
        let wire = encode_fault_config(&f);
        let mut toks = Toks::new(&wire, 0);
        let d = decode_fault_config(&mut toks).unwrap();
        assert_eq!(f, d);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
