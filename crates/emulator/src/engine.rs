//! The trace-replay engine.
//!
//! For every evaluation hour the engine looks up the placement in effect
//! (fixed for semi-static plans, the current interval's for dynamic
//! plans), sums the *actual* demand of the VMs on each host, and records
//! utilisation, contention, and power. "Resource contention for a
//! physical server captures the additional demand from virtual machines
//! that can not be met within the server's capacity" (§5.3).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;
use vmcw_consolidation::drain::plan_drain;
use vmcw_consolidation::input::{PlanningInput, VmTrace};
use vmcw_consolidation::placement::Placement;
use vmcw_consolidation::planner::ConsolidationPlan;
use vmcw_migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_migration::reliability::ReliabilityThresholds;

use crate::checkpoint::{
    CheckpointError, FaultStateCheckpoint, HostAccState, ReplayCheckpoint,
};
use crate::faults::{
    migration_attempt_fails, sample_dropped, CrashSchedule, FaultConfig, FaultLedger,
    TraceGapError, TraceGapReason,
};

/// Errors the replay engine can return instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmulatorError {
    /// A placed VM has no demand trace in the planning input.
    MissingTrace {
        /// The traceless VM.
        vm: VmId,
    },
    /// The plan references a host its data center does not provision.
    UnknownHost {
        /// The unprovisioned host.
        host: HostId,
    },
    /// A trace gap could not be survived by holding the last good value.
    TraceGap(TraceGapError),
    /// A fault-injection parameter is NaN or outside its domain.
    InvalidFaultConfig {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for EmulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmulatorError::MissingTrace { vm } => {
                write!(f, "placed VM {vm} has no demand trace")
            }
            EmulatorError::UnknownHost { host } => {
                write!(f, "plan references unprovisioned host {host}")
            }
            EmulatorError::TraceGap(gap) => gap.fmt(f),
            EmulatorError::InvalidFaultConfig { field, value } => {
                write!(f, "invalid fault config: {field} = {value}")
            }
        }
    }
}

impl Error for EmulatorError {}

impl From<TraceGapError> for EmulatorError {
    fn from(gap: TraceGapError) -> Self {
        EmulatorError::TraceGap(gap)
    }
}

/// Emulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Fraction of co-located VMs' memory recovered by page deduplication
    /// when two or more VMs share a host (§5.2: configurable; 0 for the
    /// paper-scale studies since monitored Windows memory is real demand).
    pub dedup_savings_frac: f64,
    /// Thresholds used to flag hours in which a host could not migrate
    /// reliably (risk reporting).
    pub thresholds: ReliabilityThresholds,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            dedup_savings_frac: 0.0,
            thresholds: ReliabilityThresholds::esxi41(),
        }
    }
}

/// Per-host aggregate over the whole evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSummary {
    /// The host.
    pub host: HostId,
    /// Hours the host was powered on (had at least one VM).
    pub active_hours: usize,
    /// Mean CPU utilisation over active hours (demand/capacity, may
    /// exceed 1 under contention). 0 if never active.
    pub avg_cpu_util: f64,
    /// Peak CPU utilisation over active hours.
    pub peak_cpu_util: f64,
    /// Mean memory utilisation over active hours.
    pub avg_mem_util: f64,
    /// Peak memory utilisation over active hours.
    pub peak_mem_util: f64,
    /// Hours with contention on either resource.
    pub contention_hours: usize,
    /// Hours beyond the migration-reliability thresholds.
    pub unreliable_hours: usize,
}

/// Per-hour aggregate across all hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourSummary {
    /// Evaluation-relative hour.
    pub hour: usize,
    /// Powered-on hosts.
    pub active_hosts: usize,
    /// Total power draw in watts.
    pub watts: f64,
    /// Hosts with contention this hour.
    pub contended_hosts: usize,
    /// Sum over hosts of CPU demand that could not be served, as a
    /// fraction of one host's capacity.
    pub cpu_contention: f64,
    /// Same for memory.
    pub mem_contention: f64,
}

/// Full emulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Planner that produced the plan.
    pub planner: vmcw_consolidation::planner::PlannerKind,
    /// Evaluation length in hours.
    pub hours: usize,
    /// Hosts provisioned by the plan (the space footprint).
    pub provisioned_hosts: usize,
    /// Per-host summaries, ascending host id, one per provisioned host.
    pub per_host: Vec<HostSummary>,
    /// Per-hour summaries.
    pub per_hour: Vec<HourSummary>,
    /// Total energy over the evaluation, kWh.
    pub energy_kwh: f64,
    /// Per-contended-host-hour CPU contention magnitudes (unmet CPU
    /// demand as a fraction of host capacity) — the samples of Fig 9.
    pub cpu_contention_samples: Vec<f64>,
    /// Number of live migrations the plan scheduled.
    pub migrations: usize,
    /// Of those, how many failed to converge.
    pub failed_migrations: usize,
    /// Tally of injected faults survived during replay (all zeros when
    /// replaying without fault injection).
    pub faults: FaultLedger,
}

/// Per-consolidation-interval aggregate (the paper reports most
/// evaluation numbers per 2-hour interval, not per hour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalSummary {
    /// Interval index.
    pub interval: usize,
    /// Maximum active hosts in any hour of the interval.
    pub peak_active_hosts: usize,
    /// Energy consumed in the interval, Wh.
    pub energy_wh: f64,
    /// Whether any hour of the interval saw contention.
    pub contended: bool,
}

impl EmulationReport {
    /// Folds the per-hour series into consolidation intervals of
    /// `window_hours` (Table 3: 2).
    ///
    /// # Panics
    ///
    /// Panics if `window_hours == 0`.
    #[must_use]
    pub fn interval_summaries(&self, window_hours: usize) -> Vec<IntervalSummary> {
        assert!(window_hours > 0, "interval must be positive");
        self.per_hour
            .chunks(window_hours)
            .enumerate()
            .map(|(interval, hours)| IntervalSummary {
                interval,
                peak_active_hosts: hours.iter().map(|h| h.active_hosts).max().unwrap_or(0),
                energy_wh: hours.iter().map(|h| h.watts).sum(),
                contended: hours.iter().any(|h| h.contended_hosts > 0),
            })
            .collect()
    }

    /// Fraction of provisioned host-hours that experienced contention.
    #[must_use]
    pub fn contention_time_fraction(&self) -> f64 {
        if self.provisioned_hosts == 0 || self.hours == 0 {
            return 0.0;
        }
        let contended: usize = self.per_host.iter().map(|h| h.contention_hours).sum();
        contended as f64 / (self.provisioned_hosts * self.hours) as f64
    }

    /// Mean active hosts per hour.
    #[must_use]
    pub fn mean_active_hosts(&self) -> f64 {
        if self.per_hour.is_empty() {
            return 0.0;
        }
        self.per_hour
            .iter()
            .map(|h| h.active_hosts as f64)
            .sum::<f64>()
            / self.per_hour.len() as f64
    }
}

/// Replays the evaluation window of `input` against `plan`.
///
/// # Errors
///
/// Returns [`EmulatorError`] if the plan references hosts missing from
/// its data center or places a VM without a trace.
pub fn emulate(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
) -> Result<EmulationReport, EmulatorError> {
    replay_to_completion(input, plan, config, None)
}

/// Replays the evaluation window with seeded fault injection: host
/// crashes with HA evacuation, migration failures with bounded retry,
/// and trace dropouts survived by last-good-value hold.
///
/// Runs sharing `faults.seed` see the *same* fault timeline regardless
/// of planner, so the resulting [`FaultLedger`]s are directly
/// comparable. With every fault rate zero the output is bit-identical
/// to [`emulate`].
///
/// # Errors
///
/// Returns [`EmulatorError`] for invalid fault configs, structural plan
/// errors, or trace gaps that exceed the staleness budget.
pub fn emulate_with_faults(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
    faults: &FaultConfig,
) -> Result<EmulationReport, EmulatorError> {
    replay_to_completion(input, plan, config, Some(faults))
}

fn replay_to_completion(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
    faults: Option<&FaultConfig>,
) -> Result<EmulationReport, EmulatorError> {
    let mut replay = Replay::new(input, plan, config, faults)?;
    while !replay.is_done() {
        replay.step()?;
    }
    Ok(replay.into_report())
}

/// Mutable fault-replay state mutated between hours (crash bookkeeping,
/// migration chasing, evacuation). Sample-survival state lives outside so
/// the demand loop can hold `current` immutably while updating it.
#[derive(Debug)]
struct FaultState {
    schedule: CrashSchedule,
    /// The placement actually in effect, chasing the plan's target
    /// placement through (possibly failing) migrations.
    current: EffectivePlacement,
    was_down: Vec<bool>,
    /// VMs resident on a crashed host, awaiting evacuation or repair.
    down_vms: BTreeSet<VmId>,
    precopy: PrecopyConfig,
}

/// Copy-on-write handle for the in-effect placement of a faulted replay.
///
/// In the common case — no fault fired this interval — the in-effect
/// placement is *identical* (content and storage order) to the plan's
/// placement for some hour, so cloning it every interval is pure
/// allocation churn. `Synced(k)` records that identity without a copy;
/// a private buffer is materialised only when the replay actually
/// diverges (a failed/deferred migration or an evacuation re-homing).
#[derive(Debug)]
enum EffectivePlacement {
    /// Identical — content *and* storage order — to
    /// `plan.placements.at_hour(k)`.
    Synced(usize),
    /// Diverged from the plan; owns the materialised placement.
    Diverged(Placement),
}

impl EffectivePlacement {
    /// The placement this handle denotes.
    fn resolve<'p>(&'p self, plan: &'p ConsolidationPlan) -> &'p Placement {
        match self {
            EffectivePlacement::Synced(k) => plan.placements.at_hour(*k),
            EffectivePlacement::Diverged(p) => p,
        }
    }

    /// Mutable access, materialising the private buffer on first use.
    /// The clone starts from the synced hour's plan placement, so the
    /// storage order matches what a clone-eager implementation held.
    fn make_mut(&mut self, plan: &ConsolidationPlan) -> &mut Placement {
        if let EffectivePlacement::Synced(k) = self {
            *self = EffectivePlacement::Diverged(plan.placements.at_hour(*k).clone());
        }
        match self {
            EffectivePlacement::Diverged(p) => p,
            EffectivePlacement::Synced(_) => unreachable!("just materialised"),
        }
    }
}

/// Per-host running aggregate (checkpointed losslessly as
/// [`HostAccState`]).
#[derive(Debug)]
struct HostAcc {
    active_hours: usize,
    cpu_util_sum: f64,
    mem_util_sum: f64,
    peak_cpu: f64,
    peak_mem: f64,
    contention_hours: usize,
    unreliable_hours: usize,
}

impl HostAcc {
    fn zero() -> Self {
        Self {
            active_hours: 0,
            cpu_util_sum: 0.0,
            mem_util_sum: 0.0,
            peak_cpu: 0.0,
            peak_mem: 0.0,
            contention_hours: 0,
            unreliable_hours: 0,
        }
    }
}

/// Monotonic micros since the process-wide heartbeat epoch (the first
/// time any heartbeat is created or beats).
fn heartbeat_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(Instant::now().duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// A shared, lock-free progress pulse for a running [`Replay`].
///
/// A supervisor hands a `Heartbeat` to [`Replay::set_heartbeat`]; every
/// [`Replay::step`] then beats it. A watchdog on another thread reads
/// [`secs_since_last_beat`](Self::secs_since_last_beat) to tell a slow
/// cell from a wedged one without ever touching the replay itself —
/// the beat is two relaxed atomic stores, so the hot loop pays nothing
/// measurable for being observable.
#[derive(Debug)]
pub struct Heartbeat {
    steps: AtomicU64,
    last_beat_micros: AtomicU64,
}

impl Heartbeat {
    /// A fresh heartbeat whose "last beat" is the moment of creation,
    /// so a watchdog never sees an infinite age on a cell that has not
    /// taken its first step yet.
    #[must_use]
    pub fn new() -> Self {
        Self {
            steps: AtomicU64::new(0),
            last_beat_micros: AtomicU64::new(heartbeat_micros()),
        }
    }

    /// Records one unit of progress at the current instant.
    pub fn beat(&self) {
        self.last_beat_micros
            .store(heartbeat_micros(), Ordering::Relaxed);
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Total beats so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Seconds elapsed since the last beat (or since creation).
    #[must_use]
    pub fn secs_since_last_beat(&self) -> f64 {
        let last = self.last_beat_micros.load(Ordering::Relaxed);
        let now = heartbeat_micros();
        now.saturating_sub(last) as f64 / 1e6
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::new()
    }
}

/// A stepwise, checkpointable replay of one plan.
///
/// [`emulate`] / [`emulate_with_faults`] drive a `Replay` to completion
/// in one call; a crash-safe study instead calls [`Replay::step`] one
/// hour at a time, taking a [`ReplayCheckpoint`] at its cadence and
/// rebuilding via [`Replay::resume`] after an interruption. Resuming
/// from any checkpoint yields a final report *bit-identical* to an
/// uninterrupted run: checkpoints carry every accumulator as raw IEEE
/// bits and the in-effect placement in its exact storage order, and the
/// keyed fault streams need no RNG state beyond the seed.
#[derive(Debug)]
pub struct Replay<'a> {
    input: &'a PlanningInput,
    plan: &'a ConsolidationPlan,
    config: &'a EmulatorConfig,
    faults: Option<FaultConfig>,
    capacities: Vec<Resources>,
    fingerprint: u64,
    hours: usize,
    hour: usize,
    ledger: FaultLedger,
    state: Option<FaultState>,
    last_good: BTreeMap<VmId, (Resources, usize)>,
    accs: Vec<HostAcc>,
    per_hour: Vec<HourSummary>,
    energy_wh: f64,
    cpu_contention_samples: Vec<f64>,
    /// Optional progress pulse, beaten once per [`step`](Self::step).
    /// Not part of the checkpointed state: heartbeats are session-local
    /// telemetry, never replay semantics.
    heartbeat: Option<Arc<Heartbeat>>,
}

impl<'a> Replay<'a> {
    /// Starts a replay at hour 0.
    ///
    /// # Errors
    ///
    /// Returns [`EmulatorError::InvalidFaultConfig`] for invalid fault
    /// parameters.
    pub fn new(
        input: &'a PlanningInput,
        plan: &'a ConsolidationPlan,
        config: &'a EmulatorConfig,
        faults: Option<&FaultConfig>,
    ) -> Result<Self, EmulatorError> {
        if let Some(f) = faults {
            f.validate()?;
        }
        let hours = input.eval_range().len();
        let n_hosts = plan.dc.len();
        // Per-host capacities: heterogeneous pools are supported; the
        // homogeneous paper-scale studies see identical values everywhere.
        let capacities: Vec<Resources> = plan.dc.iter().map(|h| h.model.capacity()).collect();
        let state = faults.map(|f| FaultState {
            schedule: CrashSchedule::generate(f, n_hosts, hours),
            current: EffectivePlacement::Synced(0),
            was_down: vec![false; n_hosts],
            down_vms: BTreeSet::new(),
            precopy: PrecopyConfig::gigabit(),
        });
        Ok(Self {
            input,
            plan,
            config,
            faults: faults.copied(),
            capacities,
            fingerprint: run_fingerprint(plan, config, faults, n_hosts, hours),
            hours,
            hour: 0,
            ledger: FaultLedger::default(),
            state,
            last_good: BTreeMap::new(),
            accs: (0..n_hosts).map(|_| HostAcc::zero()).collect(),
            per_hour: Vec::with_capacity(hours),
            energy_wh: 0.0,
            cpu_contention_samples: Vec::new(),
            heartbeat: None,
        })
    }

    /// Attaches a progress pulse that [`step`](Self::step) beats once
    /// per replayed hour. Purely observational: a replay with and
    /// without a heartbeat produces bit-identical results.
    pub fn set_heartbeat(&mut self, heartbeat: Arc<Heartbeat>) {
        self.heartbeat = Some(heartbeat);
    }

    /// Rebuilds a replay mid-run from a checkpoint taken by an earlier
    /// (interrupted) replay of the *same* plan and configuration.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] if the checkpoint belongs to a
    /// different plan/config (fingerprint, fleet size, horizon, or fault
    /// presence differ), [`CheckpointError::Invariant`] if the checkpoint
    /// violates a replay invariant.
    pub fn resume(
        input: &'a PlanningInput,
        plan: &'a ConsolidationPlan,
        config: &'a EmulatorConfig,
        faults: Option<&FaultConfig>,
        ckpt: &ReplayCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let mut fresh = Self::new(input, plan, config, faults).map_err(|e| {
            CheckpointError::Mismatch {
                detail: e.to_string(),
            }
        })?;
        let mismatch = |detail: String| CheckpointError::Mismatch { detail };
        if ckpt.fingerprint != fresh.fingerprint {
            return Err(mismatch(format!(
                "fingerprint {:016x} != expected {:016x}",
                ckpt.fingerprint, fresh.fingerprint
            )));
        }
        if ckpt.total_hours != fresh.hours {
            return Err(mismatch(format!(
                "checkpoint horizon {} != plan horizon {}",
                ckpt.total_hours, fresh.hours
            )));
        }
        if ckpt.fault.is_some() != fresh.state.is_some() {
            return Err(mismatch(
                "fault-injection presence differs from checkpoint".into(),
            ));
        }
        crate::validate::check_checkpoint(ckpt, fresh.accs.len(), None)?;

        fresh.hour = ckpt.hour;
        fresh.ledger = ckpt.ledger;
        fresh.energy_wh = ckpt.energy_wh;
        fresh.accs = ckpt
            .accs
            .iter()
            .map(|a| HostAcc {
                active_hours: a.active_hours,
                cpu_util_sum: a.cpu_util_sum,
                mem_util_sum: a.mem_util_sum,
                peak_cpu: a.peak_cpu,
                peak_mem: a.peak_mem,
                contention_hours: a.contention_hours,
                unreliable_hours: a.unreliable_hours,
            })
            .collect();
        fresh.per_hour = ckpt.per_hour.clone();
        fresh.cpu_contention_samples = ckpt.cpu_contention_samples.clone();
        fresh.last_good = ckpt
            .last_good
            .iter()
            .map(|&(vm, r, stale)| (vm, (r, stale)))
            .collect();
        if let (Some(fs), Some(st)) = (&ckpt.fault, fresh.state.as_mut()) {
            // Replaying the recorded per-host VM lists through assign()
            // reproduces the engine's exact storage order, hence the
            // exact f64 summation order of the interrupted run.
            let mut current = Placement::new();
            for (host, vms) in &fs.current {
                for &vm in vms {
                    current.assign(vm, *host);
                }
            }
            st.current = EffectivePlacement::Diverged(current);
            st.was_down = fs.was_down.clone();
            st.down_vms = fs.down_vms.iter().copied().collect();
        }
        Ok(fresh)
    }

    /// The next hour to replay (== hours completed so far).
    #[must_use]
    pub fn hour(&self) -> usize {
        self.hour
    }

    /// The full evaluation horizon.
    #[must_use]
    pub fn total_hours(&self) -> usize {
        self.hours
    }

    /// Whether every evaluation hour has been replayed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.hour >= self.hours
    }

    /// Captures the complete replay state at the current hour boundary.
    #[must_use]
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            fingerprint: self.fingerprint,
            hour: self.hour,
            total_hours: self.hours,
            ledger: self.ledger,
            energy_wh: self.energy_wh,
            accs: self
                .accs
                .iter()
                .map(|a| HostAccState {
                    active_hours: a.active_hours,
                    cpu_util_sum: a.cpu_util_sum,
                    mem_util_sum: a.mem_util_sum,
                    peak_cpu: a.peak_cpu,
                    peak_mem: a.peak_mem,
                    contention_hours: a.contention_hours,
                    unreliable_hours: a.unreliable_hours,
                })
                .collect(),
            per_hour: self.per_hour.clone(),
            cpu_contention_samples: self.cpu_contention_samples.clone(),
            last_good: self
                .last_good
                .iter()
                .map(|(&vm, &(r, stale))| (vm, r, stale))
                .collect(),
            fault: self.state.as_ref().map(|st| {
                let current = st.current.resolve(self.plan);
                FaultStateCheckpoint {
                    current: current
                        .active()
                        .map(|(h, vms)| (h, vms.to_vec()))
                        .collect(),
                    was_down: st.was_down.clone(),
                    down_vms: st.down_vms.iter().copied().collect(),
                }
            }),
        }
    }

    /// Replays one evaluation hour.
    ///
    /// # Errors
    ///
    /// Structural plan errors and unsurvivable trace gaps, as for
    /// [`emulate`].
    ///
    /// # Panics
    ///
    /// Panics if the replay is already complete.
    pub fn step(&mut self) -> Result<(), EmulatorError> {
        assert!(!self.is_done(), "replay already complete");
        if let Some(hb) = &self.heartbeat {
            hb.beat();
        }
        let h = self.hour;
        let eval = self.input.eval_range();
        let target = self.plan.placements.at_hour(h);
        // An interval boundary is where the in-effect placement changes;
        // recomputing it from h-1 (rather than carrying loop state) keeps
        // step() resumable at any hour.
        let boundary = h == 0 || !std::ptr::eq(self.plan.placements.at_hour(h - 1), target);
        if let (Some(fcfg), Some(st)) = (self.faults.as_ref(), self.state.as_mut()) {
            step_faults(
                self.input,
                self.plan,
                self.config,
                fcfg,
                st,
                target,
                boundary,
                h,
                &self.capacities,
                &mut self.ledger,
            );
        }
        let faults = self.faults.as_ref();
        let state = self.state.as_ref();
        let plan = self.plan;
        let placement: &Placement = state.map_or(target, |st| st.current.resolve(plan));
        let mut active_hosts = 0;
        let mut watts = 0.0;
        let mut contended_hosts = 0;
        let mut cpu_cont_total = 0.0;
        let mut mem_cont_total = 0.0;

        for (host, vms) in placement.active() {
            if let Some(st) = state {
                // Crashed hosts serve nothing and draw no power; their
                // VMs accrued downtime in step_faults.
                if st.schedule.is_down(host, h) {
                    continue;
                }
            }
            debug_assert!(!vms.is_empty());
            let mut demand = Resources::ZERO;
            for &vm in vms {
                let t = self
                    .input
                    .vm_trace(vm)
                    .ok_or(EmulatorError::MissingTrace { vm })?;
                let sample = t.demand_at(eval.start + h);
                let sample = match faults {
                    Some(fcfg) => survive_sample(
                        fcfg,
                        &mut self.last_good,
                        t,
                        vm,
                        h,
                        eval.start,
                        sample,
                        &mut self.ledger,
                    )?,
                    None => sample,
                };
                demand += sample;
            }
            if vms.len() > 1 && self.config.dedup_savings_frac > 0.0 {
                demand.mem_mb *= 1.0 - self.config.dedup_savings_frac;
            }
            let capacity = *self
                .capacities
                .get(host.0 as usize)
                .ok_or(EmulatorError::UnknownHost { host })?;
            let cpu_util = demand.cpu_rpe2 / capacity.cpu_rpe2;
            let mem_util = demand.mem_mb / capacity.mem_mb;
            let cpu_cont = (cpu_util - 1.0).max(0.0);
            let mem_cont = (mem_util - 1.0).max(0.0);

            let acc = self
                .accs
                .get_mut(host.0 as usize)
                .ok_or(EmulatorError::UnknownHost { host })?;
            acc.active_hours += 1;
            acc.cpu_util_sum += cpu_util;
            acc.mem_util_sum += mem_util;
            acc.peak_cpu = acc.peak_cpu.max(cpu_util);
            acc.peak_mem = acc.peak_mem.max(mem_util);
            if cpu_cont > 0.0 || mem_cont > 0.0 {
                acc.contention_hours += 1;
                contended_hosts += 1;
                if cpu_cont > 0.0 {
                    self.cpu_contention_samples.push(cpu_cont);
                }
            }
            if !self
                .config
                .thresholds
                .is_reliable(vmcw_migration::precopy::HostLoad::new(cpu_util, mem_util))
            {
                acc.unreliable_hours += 1;
            }

            active_hosts += 1;
            let host_watts = self
                .plan
                .dc
                .host(host)
                .ok_or(EmulatorError::UnknownHost { host })?
                .model
                .power
                .watts_at(cpu_util);
            watts += host_watts;
            cpu_cont_total += cpu_cont;
            mem_cont_total += mem_cont;
        }

        self.energy_wh += watts;
        self.per_hour.push(HourSummary {
            hour: h,
            active_hosts,
            watts,
            contended_hosts,
            cpu_contention: cpu_cont_total,
            mem_contention: mem_cont_total,
        });
        self.hour += 1;
        Ok(())
    }

    /// Finalises the replay into a report. For an incomplete replay the
    /// report is *partial*: `hours` is the completed hour count and every
    /// aggregate covers only those hours (degraded-cell reporting).
    #[must_use]
    pub fn into_report(self) -> EmulationReport {
        let per_host = self
            .accs
            .into_iter()
            .enumerate()
            .map(|(i, a)| HostSummary {
                host: HostId(i as u32),
                active_hours: a.active_hours,
                avg_cpu_util: if a.active_hours > 0 {
                    a.cpu_util_sum / a.active_hours as f64
                } else {
                    0.0
                },
                peak_cpu_util: a.peak_cpu,
                avg_mem_util: if a.active_hours > 0 {
                    a.mem_util_sum / a.active_hours as f64
                } else {
                    0.0
                },
                peak_mem_util: a.peak_mem,
                contention_hours: a.contention_hours,
                unreliable_hours: a.unreliable_hours,
            })
            .collect();

        EmulationReport {
            planner: self.plan.kind,
            hours: self.hour,
            provisioned_hosts: self.capacities.len(),
            per_host,
            per_hour: self.per_hour,
            energy_kwh: self.energy_wh / 1000.0,
            cpu_contention_samples: self.cpu_contention_samples,
            migrations: self.plan.migrations.len(),
            failed_migrations: self
                .plan
                .migrations
                .iter()
                .filter(|m| !m.converged)
                .count(),
            faults: self.ledger,
        }
    }
}

/// FNV-1a fingerprint binding a checkpoint to its (plan, config, faults)
/// triple, so `--resume` refuses state from a different run.
fn run_fingerprint(
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
    faults: Option<&FaultConfig>,
    n_hosts: usize,
    hours: usize,
) -> u64 {
    use std::fmt::Write as _;
    use vmcw_consolidation::planner::PlanPlacements;
    let mut s = String::new();
    let _ = write!(
        s,
        "{}|{n_hosts}|{hours}|{:016x}|{:016x}|{:016x}|",
        plan.kind.label(),
        config.dedup_savings_frac.to_bits(),
        config.thresholds.max_cpu_util.to_bits(),
        config.thresholds.max_mem_util.to_bits(),
    );
    match faults {
        Some(f) => {
            let _ = write!(s, "faults {}|", crate::checkpoint::encode_fault_config(f));
        }
        None => s.push_str("faults none|"),
    }
    fn hash_placement(s: &mut String, p: &Placement) {
        for (vm, host) in p.iter() {
            let _ = write!(s, "{} {};", vm.0, host.0);
        }
        s.push('|');
    }
    match &plan.placements {
        PlanPlacements::Fixed(p) => hash_placement(&mut s, p),
        PlanPlacements::PerInterval {
            placements,
            window_hours,
        } => {
            let _ = write!(s, "w{window_hours}|");
            for p in placements {
                hash_placement(&mut s, p);
            }
        }
    }
    crate::checkpoint::fnv1a(s.as_bytes())
}

/// Advances the fault state to hour `h`: crash onsets and recoveries,
/// boundary migration syncing with failure injection and retry, HA
/// evacuation of crashed hosts, and downtime accrual.
#[allow(clippy::too_many_arguments)]
fn step_faults(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
    fcfg: &FaultConfig,
    st: &mut FaultState,
    target: &Placement,
    boundary: bool,
    h: usize,
    capacities: &[Resources],
    ledger: &mut FaultLedger,
) {
    let eval_start = input.eval_range().start;
    let demand_of = |vm: VmId| -> Resources {
        input
            .vm_trace(vm)
            .map_or(Resources::ZERO, |t| t.demand_at(eval_start + h))
    };

    // 1. Crash onsets and recoveries. On a crash the host's VMs go down
    //    but stay resident (awaiting evacuation); on repair any VM still
    //    resident comes back up in place.
    for i in 0..st.was_down.len() {
        let host = HostId(i as u32);
        let down_now = st.schedule.is_down(host, h);
        if down_now && !st.was_down[i] {
            ledger.host_crashes += 1;
            for &vm in st.current.resolve(plan).vms_on(host) {
                st.down_vms.insert(vm);
            }
        } else if !down_now && st.was_down[i] {
            for &vm in st.current.resolve(plan).vms_on(host) {
                st.down_vms.remove(&vm);
            }
        }
        st.was_down[i] = down_now;
    }

    // 2. At interval boundaries, chase the plan's target placement.
    //    Each requested move can fail by injection or by violating the
    //    reliability thresholds; failures retry under the backoff policy
    //    and abandoned moves leave the VM on its source until the next
    //    boundary re-requests them.
    if boundary {
        let mut clean = true;
        for (vm, from, to) in st.current.resolve(plan).moved_vms(target) {
            if st.down_vms.contains(&vm)
                || st.schedule.is_down(from, h)
                || st.schedule.is_down(to, h)
            {
                // Cannot even start: endpoint or VM is down. Deferred.
                clean = false;
                continue;
            }
            let violates = fcfg.enforce_reliability_thresholds && {
                let cur = st.current.resolve(plan);
                let load_of = |host: HostId| -> HostLoad {
                    let cap = capacities
                        .get(host.0 as usize)
                        .copied()
                        .unwrap_or(Resources::new(1.0, 1.0));
                    let d = cur.demand_on(host, demand_of);
                    HostLoad::new(d.cpu_rpe2 / cap.cpu_rpe2, d.mem_mb / cap.mem_mb)
                };
                !config.thresholds.is_reliable(load_of(from))
                    || !config.thresholds.is_reliable(load_of(to))
            };
            let demand = demand_of(vm);
            let cap = capacities
                .get(from.0 as usize)
                .copied()
                .unwrap_or(Resources::new(1.0, 1.0));
            let profile = VmMigrationProfile::from_demand(
                demand.mem_mb,
                (demand.cpu_rpe2 / cap.cpu_rpe2).clamp(0.0, 1.0),
            );
            let src_load = {
                let d = st.current.resolve(plan).demand_on(from, demand_of);
                HostLoad::new(d.cpu_rpe2 / cap.cpu_rpe2, d.mem_mb / cap.mem_mb)
            };
            let duration = st.precopy.simulate(&profile, src_load).total_secs;
            let outcome = fcfg.retry.run(duration, |attempt| {
                violates || migration_attempt_fails(fcfg, vm, h, attempt)
            });
            ledger.failed_migrations += outcome.failed_attempts() as usize;
            if outcome.attempts > 1 {
                ledger.retried_migrations += 1;
            }
            if outcome.succeeded {
                st.current.make_mut(plan).assign(vm, to);
            } else {
                ledger.abandoned_migrations += 1;
                clean = false;
            }
        }
        if clean && st.down_vms.is_empty() {
            // Fully synced: the in-effect placement is *identical*
            // (including iteration order) to the plan's target for this
            // hour — recording that identity instead of cloning is what
            // makes zero-rate replay bit-identical *and* allocation-free.
            st.current = EffectivePlacement::Synced(h);
        }
    }

    // 3. HA evacuation: drain each crashed host that still holds down
    //    VMs through the consolidation drain path. Failure (typically
    //    NoCapacity) just leaves the VMs down; we retry next hour and the
    //    MTTR bounds the wait.
    if !st.down_vms.is_empty() {
        let down_hosts: Vec<HostId> = (0..st.was_down.len())
            .filter(|&i| st.was_down[i])
            .map(|i| HostId(i as u32))
            .collect();
        for &host in &down_hosts {
            let cur = st.current.resolve(plan);
            if !cur.vms_on(host).iter().any(|v| st.down_vms.contains(v)) {
                continue;
            }
            // Other crashed hosts must be invisible to the drain's
            // destination search: hide their residents. With a single
            // crashed host there is nothing to hide, so the in-effect
            // placement already *is* the drain's visible world and the
            // per-hour clone is skipped.
            let dp = if down_hosts.len() == 1 {
                plan_drain(
                    input,
                    cur,
                    host,
                    &plan.dc,
                    h,
                    fcfg.evacuation_bounds,
                    &st.precopy,
                )
            } else {
                let mut visible = cur.clone();
                for &other in &down_hosts {
                    if other == host {
                        continue;
                    }
                    for vm in visible.vms_on(other).to_vec() {
                        visible.remove(vm);
                    }
                }
                plan_drain(
                    input,
                    &visible,
                    host,
                    &plan.dc,
                    h,
                    fcfg.evacuation_bounds,
                    &st.precopy,
                )
            };
            if let Ok(dp) = dp {
                for (vm, dest) in dp.moves {
                    st.current.make_mut(plan).assign(vm, dest);
                    if st.down_vms.remove(&vm) {
                        ledger.evacuations += 1;
                    }
                }
            }
        }
    }

    // 4. VMs still down at the end of the hour accrue downtime.
    ledger.downtime_vm_hours += st.down_vms.len();
}

/// Survives one (possibly missing) hourly sample: injected dropouts and
/// NaN samples are replaced by the VM's last good value, tracking
/// staleness against the configured budget. The hour immediately before
/// the evaluation window seeds the hold for gaps at hour 0.
#[allow(clippy::too_many_arguments)]
fn survive_sample(
    fcfg: &FaultConfig,
    last_good: &mut BTreeMap<VmId, (Resources, usize)>,
    trace: &VmTrace,
    vm: VmId,
    h: usize,
    eval_start: usize,
    sample: Resources,
    ledger: &mut FaultLedger,
) -> Result<Resources, EmulatorError> {
    let missing =
        sample.cpu_rpe2.is_nan() || sample.mem_mb.is_nan() || sample_dropped(fcfg, vm, h);
    if !missing {
        last_good.insert(vm, (sample, 0));
        return Ok(sample);
    }
    ledger.stale_sample_hours += 1;
    match last_good.get_mut(&vm) {
        Some((good, stale)) => {
            *stale += 1;
            if *stale > fcfg.max_stale_hours {
                return Err(TraceGapError {
                    vm,
                    hour: h,
                    reason: TraceGapReason::StalenessBudgetExceeded { stale_hours: *stale },
                }
                .into());
            }
            Ok(*good)
        }
        None => {
            // Nothing observed yet this replay: fall back to the last
            // history sample, the operator's view just before evaluation.
            let fallback = (eval_start > 0)
                .then(|| trace.demand_at(eval_start - 1))
                .filter(|d| !d.cpu_rpe2.is_nan() && !d.mem_mb.is_nan());
            match fallback {
                Some(good) => {
                    last_good.insert(vm, (good, 1));
                    Ok(good)
                }
                None => Err(TraceGapError {
                    vm,
                    hour: h,
                    reason: TraceGapReason::NeverObserved,
                }
                .into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_consolidation::input::VirtualizationModel;
    use vmcw_consolidation::planner::Planner;
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn setup(dcid: DataCenterId) -> (PlanningInput, Planner) {
        let w = GeneratorConfig::new(dcid).scale(0.03).days(10).generate(21);
        (
            PlanningInput::from_workload(&w, 7, VirtualizationModel::baseline()),
            Planner::baseline(),
        )
    }

    #[test]
    fn semi_static_keeps_all_hosts_active() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        assert_eq!(report.hours, 72);
        for hour in &report.per_hour {
            assert_eq!(hour.active_hosts, report.provisioned_hosts);
        }
        for host in &report.per_host {
            assert_eq!(host.active_hours, 72);
        }
    }

    #[test]
    fn dynamic_varies_active_hosts_and_uses_less_energy() {
        let (input, planner) = setup(DataCenterId::Banking);
        let fixed = planner.plan_semi_static(&input).unwrap();
        let dynamic = planner.plan_dynamic(&input).unwrap();
        let cfg = EmulatorConfig::default();
        let fixed_report = emulate(&input, &fixed, &cfg).unwrap();
        let dyn_report = emulate(&input, &dynamic, &cfg).unwrap();
        assert!(
            dyn_report.mean_active_hosts() < fixed_report.provisioned_hosts as f64,
            "dynamic must switch servers off some of the time"
        );
        assert!(
            dyn_report.energy_kwh < fixed_report.energy_kwh,
            "dynamic {} kWh vs semi-static {} kWh",
            dyn_report.energy_kwh,
            fixed_report.energy_kwh
        );
    }

    #[test]
    fn utilisation_is_within_bounds_for_peak_sized_plans() {
        // Semi-static sizes at the history max; evaluation demand can
        // exceed it only via trace drift, so utilisation stays near ≤1.
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        for host in &report.per_host {
            assert!(host.avg_cpu_util <= 1.0 + 1e-9);
            assert!(host.avg_mem_util <= 1.05, "mem util {}", host.avg_mem_util);
        }
    }

    #[test]
    fn energy_equals_per_hour_watt_sum() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_stochastic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        let total_wh: f64 = report.per_hour.iter().map(|h| h.watts).sum();
        assert!((report.energy_kwh - total_wh / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dedup_reduces_memory_utilisation() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let base = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        let dedup = emulate(
            &input,
            &plan,
            &EmulatorConfig {
                dedup_savings_frac: 0.3,
                ..EmulatorConfig::default()
            },
        )
        .unwrap();
        let mean_mem = |r: &EmulationReport| {
            r.per_host.iter().map(|h| h.avg_mem_util).sum::<f64>() / r.per_host.len() as f64
        };
        assert!(mean_mem(&dedup) < mean_mem(&base));
    }

    #[test]
    fn contention_fraction_is_a_fraction() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        let f = report.contention_time_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Every contention sample must be positive.
        assert!(report.cpu_contention_samples.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn interval_summaries_fold_hours() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        let intervals = report.interval_summaries(2);
        assert_eq!(intervals.len(), report.hours.div_ceil(2));
        // Energy conservation: interval energy sums to the total.
        let total_wh: f64 = intervals.iter().map(|i| i.energy_wh).sum();
        assert!((total_wh / 1000.0 - report.energy_kwh).abs() < 1e-9);
        // Peak active hosts within an interval dominates each hour.
        for (i, interval) in intervals.iter().enumerate() {
            for h in &report.per_hour[i * 2..((i + 1) * 2).min(report.hours)] {
                assert!(interval.peak_active_hosts >= h.active_hosts);
            }
        }
        // Contended intervals exist iff contended hours exist.
        let any_hour = report.per_hour.iter().any(|h| h.contended_hosts > 0);
        let any_interval = intervals.iter().any(|i| i.contended);
        assert_eq!(any_hour, any_interval);
    }

    #[test]
    fn migration_counters_propagate() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
        assert_eq!(report.migrations, plan.migrations.len());
        assert!(report.failed_migrations <= report.migrations);
    }

    #[test]
    fn zero_rate_fault_replay_is_bit_identical() {
        // The golden guarantee: a disabled fault config performs the
        // exact same arithmetic in the exact same order as the plain
        // engine, for every planner kind on every calibrated data center.
        use crate::faults::FaultConfig;
        let cfg = EmulatorConfig::default();
        for dc in [
            DataCenterId::Banking,
            DataCenterId::Airlines,
            DataCenterId::NaturalResources,
            DataCenterId::Beverage,
        ] {
            let (input, planner) = setup(dc);
            for kind in vmcw_consolidation::planner::PlannerKind::EVALUATED {
                let plan = planner.plan(kind, &input).unwrap();
                let plain = emulate(&input, &plan, &cfg).unwrap();
                let faulted =
                    emulate_with_faults(&input, &plan, &cfg, &FaultConfig::disabled()).unwrap();
                assert_eq!(plain, faulted, "{dc:?}/{kind:?} diverged under zero-rate faults");
                assert!(faulted.faults.is_clean());
            }
        }
    }

    #[test]
    fn crashes_reduce_active_hosts_and_fill_the_ledger() {
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let cfg = EmulatorConfig::default();
        let faults = FaultConfig {
            host_mtbf_hours: 36.0,
            host_mttr_hours: 4.0,
            ..FaultConfig::disabled()
        };
        let plain = emulate(&input, &plan, &cfg).unwrap();
        let faulted = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
        assert!(faulted.faults.host_crashes > 0, "36h MTBF over 72h must crash");
        // A crashed host draws no power.
        assert!(faulted.energy_kwh < plain.energy_kwh);
        // Downtime accrues only while VMs are down; evacuations restart
        // them elsewhere.
        assert!(faulted.faults.downtime_vm_hours > 0 || faulted.faults.evacuations > 0);
    }

    #[test]
    fn same_fault_seed_gives_identical_reports() {
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let cfg = EmulatorConfig::default();
        let faults = FaultConfig::baseline(17);
        let a = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
        let b = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_migration_failures_are_ledgered() {
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        assert!(!plan.migrations.is_empty(), "dynamic plan must migrate");
        let cfg = EmulatorConfig::default();
        let faults = FaultConfig {
            migration_failure_prob: 0.5,
            ..FaultConfig::disabled()
        };
        let report = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
        assert!(
            report.faults.failed_migrations > 0,
            "50% failure rate must fail some attempts"
        );
        assert!(report.faults.retried_migrations > 0);
    }

    #[test]
    fn dropouts_are_survived_and_counted() {
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let cfg = EmulatorConfig::default();
        let faults = FaultConfig {
            trace_dropout_prob: 0.05,
            ..FaultConfig::disabled()
        };
        let report = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
        assert!(report.faults.stale_sample_hours > 0);
        // Held values keep utilisation finite.
        for host in &report.per_host {
            assert!(host.avg_cpu_util.is_finite());
            assert!(host.avg_mem_util.is_finite());
        }
    }

    #[test]
    fn nan_samples_are_survived_without_injection() {
        use crate::faults::FaultConfig;
        let (mut input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        // Corrupt one VM's trace mid-evaluation.
        let eval_start = input.eval_range().start;
        {
            let t = &mut input.vms[0];
            let mut values = t.cpu_rpe2.values().to_vec();
            values[eval_start + 5] = f64::NAN;
            t.cpu_rpe2 = vmcw_trace::series::TimeSeries::new(t.cpu_rpe2.step(), values);
        }
        let cfg = EmulatorConfig::default();
        let report =
            emulate_with_faults(&input, &plan, &cfg, &FaultConfig::disabled()).unwrap();
        assert_eq!(report.faults.stale_sample_hours, 1);
        for host in &report.per_host {
            assert!(host.avg_cpu_util.is_finite());
        }
    }

    #[test]
    fn staleness_budget_aborts_with_trace_gap() {
        use crate::faults::FaultConfig;
        let (mut input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let eval_start = input.eval_range().start;
        {
            let t = &mut input.vms[0];
            let mut values = t.cpu_rpe2.values().to_vec();
            for v in values.iter_mut().skip(eval_start) {
                *v = f64::NAN;
            }
            t.cpu_rpe2 = vmcw_trace::series::TimeSeries::new(t.cpu_rpe2.step(), values);
        }
        let faults = FaultConfig {
            max_stale_hours: 6,
            ..FaultConfig::disabled()
        };
        let err =
            emulate_with_faults(&input, &plan, &EmulatorConfig::default(), &faults).unwrap_err();
        assert!(matches!(err, EmulatorError::TraceGap(_)), "{err}");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_at_every_hour() {
        // Interrupt a faulted replay at several hours, round-trip the
        // checkpoint through its wire format, resume, and require the
        // final report to be bit-identical to an uninterrupted run.
        use crate::checkpoint::ReplayCheckpoint;
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Banking);
        let cfg = EmulatorConfig::default();
        let faults = FaultConfig {
            host_mtbf_hours: 40.0,
            host_mttr_hours: 3.0,
            migration_failure_prob: 0.1,
            trace_dropout_prob: 0.02,
            ..FaultConfig::baseline(23)
        };
        for kind in vmcw_consolidation::planner::PlannerKind::EVALUATED {
            let plan = planner.plan(kind, &input).unwrap();
            let baseline = emulate_with_faults(&input, &plan, &cfg, &faults).unwrap();
            for kill_hour in [1, 13, 29, 71, 72] {
                let mut first = Replay::new(&input, &plan, &cfg, Some(&faults)).unwrap();
                for _ in 0..kill_hour {
                    first.step().unwrap();
                }
                let wire = first.checkpoint().encode();
                let ckpt = ReplayCheckpoint::decode(&wire).unwrap();
                let mut second =
                    Replay::resume(&input, &plan, &cfg, Some(&faults), &ckpt).unwrap();
                assert_eq!(second.hour(), kill_hour);
                while !second.is_done() {
                    second.step().unwrap();
                }
                let resumed = second.into_report();
                assert_eq!(
                    crate::checkpoint::encode_report(&baseline),
                    crate::checkpoint::encode_report(&resumed),
                    "{kind:?} diverged after resume at hour {kill_hour}"
                );
            }
        }
    }

    #[test]
    fn plain_replay_checkpoints_resume_too() {
        use crate::checkpoint::ReplayCheckpoint;
        let (input, planner) = setup(DataCenterId::Airlines);
        let cfg = EmulatorConfig::default();
        let plan = planner.plan_dynamic(&input).unwrap();
        let baseline = emulate(&input, &plan, &cfg).unwrap();
        let mut first = Replay::new(&input, &plan, &cfg, None).unwrap();
        for _ in 0..17 {
            first.step().unwrap();
        }
        let ckpt = ReplayCheckpoint::decode(&first.checkpoint().encode()).unwrap();
        let mut second = Replay::resume(&input, &plan, &cfg, None, &ckpt).unwrap();
        while !second.is_done() {
            second.step().unwrap();
        }
        assert_eq!(baseline, second.into_report());
    }

    #[test]
    fn partial_report_covers_completed_hours_only() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let cfg = EmulatorConfig::default();
        let plan = planner.plan_semi_static(&input).unwrap();
        let mut replay = Replay::new(&input, &plan, &cfg, None).unwrap();
        for _ in 0..10 {
            replay.step().unwrap();
        }
        let report = replay.into_report();
        assert_eq!(report.hours, 10);
        assert_eq!(report.per_hour.len(), 10);
        for host in &report.per_host {
            assert!(host.active_hours <= 10);
        }
        let full_energy: f64 = report.per_hour.iter().map(|h| h.watts).sum();
        assert!((report.energy_kwh - full_energy / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        use crate::checkpoint::CheckpointError;
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Banking);
        let cfg = EmulatorConfig::default();
        let semi = planner.plan_semi_static(&input).unwrap();
        let dynamic = planner.plan_dynamic(&input).unwrap();
        let mut replay = Replay::new(&input, &semi, &cfg, None).unwrap();
        replay.step().unwrap();
        let ckpt = replay.checkpoint();
        // Different plan → fingerprint mismatch.
        let err = Replay::resume(&input, &dynamic, &cfg, None, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        // Fault presence must match too.
        let faults = FaultConfig::disabled();
        let err = Replay::resume(&input, &semi, &cfg, Some(&faults), &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn resume_rejects_invariant_violations() {
        use crate::checkpoint::CheckpointError;
        let (input, planner) = setup(DataCenterId::Banking);
        let cfg = EmulatorConfig::default();
        let plan = planner.plan_semi_static(&input).unwrap();
        let mut replay = Replay::new(&input, &plan, &cfg, None).unwrap();
        for _ in 0..5 {
            replay.step().unwrap();
        }
        let mut ckpt = replay.checkpoint();
        // Corrupt the accounting: drop a per-hour row.
        ckpt.per_hour.pop();
        let err = Replay::resume(&input, &plan, &cfg, None, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Invariant(_)), "{err}");
    }

    #[test]
    fn invalid_fault_config_is_rejected_up_front() {
        use crate::faults::FaultConfig;
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let faults = FaultConfig {
            migration_failure_prob: f64::NAN,
            ..FaultConfig::disabled()
        };
        let err =
            emulate_with_faults(&input, &plan, &EmulatorConfig::default(), &faults).unwrap_err();
        assert!(matches!(err, EmulatorError::InvalidFaultConfig { .. }));
    }
}
