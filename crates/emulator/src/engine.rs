//! The trace-replay engine.
//!
//! For every evaluation hour the engine looks up the placement in effect
//! (fixed for semi-static plans, the current interval's for dynamic
//! plans), sums the *actual* demand of the VMs on each host, and records
//! utilisation, contention, and power. "Resource contention for a
//! physical server captures the additional demand from virtual machines
//! that can not be met within the server's capacity" (§5.3).

use serde::{Deserialize, Serialize};
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::resources::Resources;
use vmcw_consolidation::input::PlanningInput;
use vmcw_consolidation::planner::ConsolidationPlan;
use vmcw_migration::reliability::ReliabilityThresholds;

/// Emulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Fraction of co-located VMs' memory recovered by page deduplication
    /// when two or more VMs share a host (§5.2: configurable; 0 for the
    /// paper-scale studies since monitored Windows memory is real demand).
    pub dedup_savings_frac: f64,
    /// Thresholds used to flag hours in which a host could not migrate
    /// reliably (risk reporting).
    pub thresholds: ReliabilityThresholds,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            dedup_savings_frac: 0.0,
            thresholds: ReliabilityThresholds::esxi41(),
        }
    }
}

/// Per-host aggregate over the whole evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSummary {
    /// The host.
    pub host: HostId,
    /// Hours the host was powered on (had at least one VM).
    pub active_hours: usize,
    /// Mean CPU utilisation over active hours (demand/capacity, may
    /// exceed 1 under contention). 0 if never active.
    pub avg_cpu_util: f64,
    /// Peak CPU utilisation over active hours.
    pub peak_cpu_util: f64,
    /// Mean memory utilisation over active hours.
    pub avg_mem_util: f64,
    /// Peak memory utilisation over active hours.
    pub peak_mem_util: f64,
    /// Hours with contention on either resource.
    pub contention_hours: usize,
    /// Hours beyond the migration-reliability thresholds.
    pub unreliable_hours: usize,
}

/// Per-hour aggregate across all hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourSummary {
    /// Evaluation-relative hour.
    pub hour: usize,
    /// Powered-on hosts.
    pub active_hosts: usize,
    /// Total power draw in watts.
    pub watts: f64,
    /// Hosts with contention this hour.
    pub contended_hosts: usize,
    /// Sum over hosts of CPU demand that could not be served, as a
    /// fraction of one host's capacity.
    pub cpu_contention: f64,
    /// Same for memory.
    pub mem_contention: f64,
}

/// Full emulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Planner that produced the plan.
    pub planner: vmcw_consolidation::planner::PlannerKind,
    /// Evaluation length in hours.
    pub hours: usize,
    /// Hosts provisioned by the plan (the space footprint).
    pub provisioned_hosts: usize,
    /// Per-host summaries, ascending host id, one per provisioned host.
    pub per_host: Vec<HostSummary>,
    /// Per-hour summaries.
    pub per_hour: Vec<HourSummary>,
    /// Total energy over the evaluation, kWh.
    pub energy_kwh: f64,
    /// Per-contended-host-hour CPU contention magnitudes (unmet CPU
    /// demand as a fraction of host capacity) — the samples of Fig 9.
    pub cpu_contention_samples: Vec<f64>,
    /// Number of live migrations the plan scheduled.
    pub migrations: usize,
    /// Of those, how many failed to converge.
    pub failed_migrations: usize,
}

/// Per-consolidation-interval aggregate (the paper reports most
/// evaluation numbers per 2-hour interval, not per hour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalSummary {
    /// Interval index.
    pub interval: usize,
    /// Maximum active hosts in any hour of the interval.
    pub peak_active_hosts: usize,
    /// Energy consumed in the interval, Wh.
    pub energy_wh: f64,
    /// Whether any hour of the interval saw contention.
    pub contended: bool,
}

impl EmulationReport {
    /// Folds the per-hour series into consolidation intervals of
    /// `window_hours` (Table 3: 2).
    ///
    /// # Panics
    ///
    /// Panics if `window_hours == 0`.
    #[must_use]
    pub fn interval_summaries(&self, window_hours: usize) -> Vec<IntervalSummary> {
        assert!(window_hours > 0, "interval must be positive");
        self.per_hour
            .chunks(window_hours)
            .enumerate()
            .map(|(interval, hours)| IntervalSummary {
                interval,
                peak_active_hosts: hours.iter().map(|h| h.active_hosts).max().unwrap_or(0),
                energy_wh: hours.iter().map(|h| h.watts).sum(),
                contended: hours.iter().any(|h| h.contended_hosts > 0),
            })
            .collect()
    }

    /// Fraction of provisioned host-hours that experienced contention.
    #[must_use]
    pub fn contention_time_fraction(&self) -> f64 {
        if self.provisioned_hosts == 0 || self.hours == 0 {
            return 0.0;
        }
        let contended: usize = self.per_host.iter().map(|h| h.contention_hours).sum();
        contended as f64 / (self.provisioned_hosts * self.hours) as f64
    }

    /// Mean active hosts per hour.
    #[must_use]
    pub fn mean_active_hosts(&self) -> f64 {
        if self.per_hour.is_empty() {
            return 0.0;
        }
        self.per_hour
            .iter()
            .map(|h| h.active_hosts as f64)
            .sum::<f64>()
            / self.per_hour.len() as f64
    }
}

/// Replays the evaluation window of `input` against `plan`.
///
/// # Panics
///
/// Panics if the plan references hosts missing from its data center.
#[must_use]
pub fn emulate(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
    config: &EmulatorConfig,
) -> EmulationReport {
    let eval = input.eval_range();
    let hours = eval.len();
    let n_hosts = plan.dc.len();
    // Per-host capacities: heterogeneous pools are supported; the
    // homogeneous paper-scale studies see identical values everywhere.
    let capacities: Vec<Resources> = plan.dc.iter().map(|h| h.model.capacity()).collect();

    struct HostAcc {
        active_hours: usize,
        cpu_util_sum: f64,
        mem_util_sum: f64,
        peak_cpu: f64,
        peak_mem: f64,
        contention_hours: usize,
        unreliable_hours: usize,
    }
    let mut accs: Vec<HostAcc> = (0..n_hosts)
        .map(|_| HostAcc {
            active_hours: 0,
            cpu_util_sum: 0.0,
            mem_util_sum: 0.0,
            peak_cpu: 0.0,
            peak_mem: 0.0,
            contention_hours: 0,
            unreliable_hours: 0,
        })
        .collect();
    let mut per_hour = Vec::with_capacity(hours);
    let mut energy_wh = 0.0;
    let mut cpu_contention_samples = Vec::new();

    for h in 0..hours {
        let placement = plan.placements.at_hour(h);
        let mut active_hosts = 0;
        let mut watts = 0.0;
        let mut contended_hosts = 0;
        let mut cpu_cont_total = 0.0;
        let mut mem_cont_total = 0.0;

        for host in placement.active_hosts() {
            let vms = placement.vms_on(host);
            debug_assert!(!vms.is_empty());
            let mut demand = Resources::ZERO;
            for &vm in vms {
                let t = input.vm_trace(vm).expect("placed VM has a trace");
                demand += t.demand_at(eval.start + h);
            }
            if vms.len() > 1 && config.dedup_savings_frac > 0.0 {
                demand.mem_mb *= 1.0 - config.dedup_savings_frac;
            }
            let capacity = capacities[host.0 as usize];
            let cpu_util = demand.cpu_rpe2 / capacity.cpu_rpe2;
            let mem_util = demand.mem_mb / capacity.mem_mb;
            let cpu_cont = (cpu_util - 1.0).max(0.0);
            let mem_cont = (mem_util - 1.0).max(0.0);

            let acc = &mut accs[host.0 as usize];
            acc.active_hours += 1;
            acc.cpu_util_sum += cpu_util;
            acc.mem_util_sum += mem_util;
            acc.peak_cpu = acc.peak_cpu.max(cpu_util);
            acc.peak_mem = acc.peak_mem.max(mem_util);
            if cpu_cont > 0.0 || mem_cont > 0.0 {
                acc.contention_hours += 1;
                contended_hosts += 1;
                if cpu_cont > 0.0 {
                    cpu_contention_samples.push(cpu_cont);
                }
            }
            if !config
                .thresholds
                .is_reliable(vmcw_migration::precopy::HostLoad::new(cpu_util, mem_util))
            {
                acc.unreliable_hours += 1;
            }

            active_hosts += 1;
            let host_watts = plan
                .dc
                .host(host)
                .expect("plan host exists")
                .model
                .power
                .watts_at(cpu_util);
            watts += host_watts;
            cpu_cont_total += cpu_cont;
            mem_cont_total += mem_cont;
        }

        energy_wh += watts;
        per_hour.push(HourSummary {
            hour: h,
            active_hosts,
            watts,
            contended_hosts,
            cpu_contention: cpu_cont_total,
            mem_contention: mem_cont_total,
        });
    }

    let per_host = accs
        .into_iter()
        .enumerate()
        .map(|(i, a)| HostSummary {
            host: HostId(i as u32),
            active_hours: a.active_hours,
            avg_cpu_util: if a.active_hours > 0 {
                a.cpu_util_sum / a.active_hours as f64
            } else {
                0.0
            },
            peak_cpu_util: a.peak_cpu,
            avg_mem_util: if a.active_hours > 0 {
                a.mem_util_sum / a.active_hours as f64
            } else {
                0.0
            },
            peak_mem_util: a.peak_mem,
            contention_hours: a.contention_hours,
            unreliable_hours: a.unreliable_hours,
        })
        .collect();

    EmulationReport {
        planner: plan.kind,
        hours,
        provisioned_hosts: n_hosts,
        per_host,
        per_hour,
        energy_kwh: energy_wh / 1000.0,
        cpu_contention_samples,
        migrations: plan.migrations.len(),
        failed_migrations: plan.migrations.iter().filter(|m| !m.converged).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_consolidation::input::VirtualizationModel;
    use vmcw_consolidation::planner::Planner;
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn setup(dcid: DataCenterId) -> (PlanningInput, Planner) {
        let w = GeneratorConfig::new(dcid).scale(0.03).days(10).generate(21);
        (
            PlanningInput::from_workload(&w, 7, VirtualizationModel::baseline()),
            Planner::baseline(),
        )
    }

    #[test]
    fn semi_static_keeps_all_hosts_active() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        assert_eq!(report.hours, 72);
        for hour in &report.per_hour {
            assert_eq!(hour.active_hosts, report.provisioned_hosts);
        }
        for host in &report.per_host {
            assert_eq!(host.active_hours, 72);
        }
    }

    #[test]
    fn dynamic_varies_active_hosts_and_uses_less_energy() {
        let (input, planner) = setup(DataCenterId::Banking);
        let fixed = planner.plan_semi_static(&input).unwrap();
        let dynamic = planner.plan_dynamic(&input).unwrap();
        let cfg = EmulatorConfig::default();
        let fixed_report = emulate(&input, &fixed, &cfg);
        let dyn_report = emulate(&input, &dynamic, &cfg);
        assert!(
            dyn_report.mean_active_hosts() < fixed_report.provisioned_hosts as f64,
            "dynamic must switch servers off some of the time"
        );
        assert!(
            dyn_report.energy_kwh < fixed_report.energy_kwh,
            "dynamic {} kWh vs semi-static {} kWh",
            dyn_report.energy_kwh,
            fixed_report.energy_kwh
        );
    }

    #[test]
    fn utilisation_is_within_bounds_for_peak_sized_plans() {
        // Semi-static sizes at the history max; evaluation demand can
        // exceed it only via trace drift, so utilisation stays near ≤1.
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        for host in &report.per_host {
            assert!(host.avg_cpu_util <= 1.0 + 1e-9);
            assert!(host.avg_mem_util <= 1.05, "mem util {}", host.avg_mem_util);
        }
    }

    #[test]
    fn energy_equals_per_hour_watt_sum() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_stochastic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        let total_wh: f64 = report.per_hour.iter().map(|h| h.watts).sum();
        assert!((report.energy_kwh - total_wh / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dedup_reduces_memory_utilisation() {
        let (input, planner) = setup(DataCenterId::Airlines);
        let plan = planner.plan_semi_static(&input).unwrap();
        let base = emulate(&input, &plan, &EmulatorConfig::default());
        let dedup = emulate(
            &input,
            &plan,
            &EmulatorConfig {
                dedup_savings_frac: 0.3,
                ..EmulatorConfig::default()
            },
        );
        let mean_mem = |r: &EmulationReport| {
            r.per_host.iter().map(|h| h.avg_mem_util).sum::<f64>() / r.per_host.len() as f64
        };
        assert!(mean_mem(&dedup) < mean_mem(&base));
    }

    #[test]
    fn contention_fraction_is_a_fraction() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        let f = report.contention_time_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Every contention sample must be positive.
        assert!(report.cpu_contention_samples.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn interval_summaries_fold_hours() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        let intervals = report.interval_summaries(2);
        assert_eq!(intervals.len(), report.hours.div_ceil(2));
        // Energy conservation: interval energy sums to the total.
        let total_wh: f64 = intervals.iter().map(|i| i.energy_wh).sum();
        assert!((total_wh / 1000.0 - report.energy_kwh).abs() < 1e-9);
        // Peak active hosts within an interval dominates each hour.
        for (i, interval) in intervals.iter().enumerate() {
            for h in &report.per_hour[i * 2..((i + 1) * 2).min(report.hours)] {
                assert!(interval.peak_active_hosts >= h.active_hosts);
            }
        }
        // Contended intervals exist iff contended hours exist.
        let any_hour = report.per_hour.iter().any(|h| h.contended_hosts > 0);
        let any_interval = intervals.iter().any(|i| i.contended);
        assert_eq!(any_hour, any_interval);
    }

    #[test]
    fn migration_counters_propagate() {
        let (input, planner) = setup(DataCenterId::Banking);
        let plan = planner.plan_dynamic(&input).unwrap();
        let report = emulate(&input, &plan, &EmulatorConfig::default());
        assert_eq!(report.migrations, plan.migrations.len());
        assert!(report.failed_migrations <= report.migrations);
    }
}
