//! Figure-oriented aggregation of emulation reports.
//!
//! Each function produces exactly one of the series the paper's
//! evaluation plots: cost bars (Fig 7), contention fractions (Fig 8),
//! contention CDFs (Fig 9), utilisation CDFs (Figs 10/11) and the
//! active-server distribution (Fig 12).

use crate::engine::EmulationReport;
use serde::{Deserialize, Serialize};
use vmcw_cluster::cost::FacilityCostModel;
use vmcw_trace::stats::Cdf;

/// Space and power cost of one emulated plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSummary {
    /// Provisioned servers (max across intervals).
    pub provisioned_hosts: usize,
    /// Facilities + hardware cost.
    pub space_cost: f64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Energy cost.
    pub power_cost: f64,
}

/// Computes the space and power cost of a report under a cost model.
#[must_use]
pub fn cost_summary(report: &EmulationReport, model: &FacilityCostModel) -> CostSummary {
    CostSummary {
        provisioned_hosts: report.provisioned_hosts,
        space_cost: model.space_cost(report.provisioned_hosts),
        energy_kwh: report.energy_kwh,
        power_cost: model.power_cost(report.energy_kwh),
    }
}

impl CostSummary {
    /// Normalises this summary's costs against a baseline (Fig 7 is
    /// "normalized with respect to the cost of the Vanilla semi-static
    /// approach").
    ///
    /// Returns `(space, power)` ratios; a baseline cost of zero maps to
    /// ratio 0.
    #[must_use]
    pub fn normalized_to(&self, baseline: &CostSummary) -> (f64, f64) {
        let space = if baseline.space_cost > 0.0 {
            self.space_cost / baseline.space_cost
        } else {
            0.0
        };
        let power = if baseline.power_cost > 0.0 {
            self.power_cost / baseline.power_cost
        } else {
            0.0
        };
        (space, power)
    }
}

/// CDF of per-host average CPU utilisation (Fig 10). Hosts that were
/// never active are excluded (they have no utilisation to speak of).
#[must_use]
pub fn avg_util_cdf(report: &EmulationReport) -> Cdf {
    report
        .per_host
        .iter()
        .filter(|h| h.active_hours > 0)
        .map(|h| h.avg_cpu_util)
        .collect()
}

/// CDF of per-host peak CPU utilisation (Fig 11); values above 1 are the
/// "servers crossing 100% CPU utilization" of the paper.
#[must_use]
pub fn peak_util_cdf(report: &EmulationReport) -> Cdf {
    report
        .per_host
        .iter()
        .filter(|h| h.active_hours > 0)
        .map(|h| h.peak_cpu_util)
        .collect()
}

/// CDF of CPU contention magnitude across contended host-hours (Fig 9).
#[must_use]
pub fn contention_cdf(report: &EmulationReport) -> Cdf {
    report.cpu_contention_samples.iter().copied().collect()
}

/// CDF of the fraction of provisioned servers running per interval
/// (Fig 12; only meaningful for dynamic plans — fixed plans give a point
/// mass at 1).
#[must_use]
pub fn active_fraction_cdf(report: &EmulationReport) -> Cdf {
    let n = report.provisioned_hosts.max(1) as f64;
    report
        .per_hour
        .iter()
        .map(|h| h.active_hosts as f64 / n)
        .collect()
}

/// Fraction of provisioned host-hours with contention (Fig 8).
#[must_use]
pub fn contention_time_fraction(report: &EmulationReport) -> f64 {
    report.contention_time_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
    use vmcw_consolidation::planner::Planner;
    use vmcw_emulator_test_support::*;

    // Local helper to build a small emulated report.
    mod vmcw_emulator_test_support {
        use super::*;
        use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

        pub fn small_report(dynamic: bool) -> EmulationReport {
            let w = GeneratorConfig::new(DataCenterId::Beverage)
                .scale(0.02)
                .days(9)
                .generate(4);
            let input = PlanningInput::from_workload(&w, 6, VirtualizationModel::baseline());
            let planner = Planner::baseline();
            let plan = if dynamic {
                planner.plan_dynamic(&input).unwrap()
            } else {
                planner.plan_semi_static(&input).unwrap()
            };
            crate::engine::emulate(&input, &plan, &crate::engine::EmulatorConfig::default())
                .unwrap()
        }
    }

    #[test]
    fn cost_summary_uses_model() {
        let report = small_report(false);
        let model = FacilityCostModel::default();
        let c = cost_summary(&report, &model);
        assert_eq!(c.provisioned_hosts, report.provisioned_hosts);
        assert_eq!(c.space_cost, model.space_cost(report.provisioned_hosts));
        assert!((c.power_cost - report.energy_kwh * model.price_per_kwh).abs() < 1e-9);
    }

    #[test]
    fn normalisation_of_baseline_is_one() {
        let report = small_report(false);
        let c = cost_summary(&report, &FacilityCostModel::default());
        let (s, p) = c.normalized_to(&c);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_plan_active_fraction_is_always_one() {
        let report = small_report(false);
        let cdf = active_fraction_cdf(&report);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(1.0));
    }

    #[test]
    fn dynamic_plan_active_fraction_varies() {
        let report = small_report(true);
        let cdf = active_fraction_cdf(&report);
        assert!(cdf.quantile(0.05).unwrap() < cdf.quantile(1.0).unwrap() + 1e-12);
        assert!(cdf.quantile(0.05).unwrap() <= 1.0);
    }

    #[test]
    fn util_cdfs_cover_active_hosts() {
        let report = small_report(false);
        let avg = avg_util_cdf(&report);
        let peak = peak_util_cdf(&report);
        assert_eq!(avg.len(), peak.len());
        assert!(avg.len() <= report.provisioned_hosts);
        // Peak dominates average per host, so the medians must order.
        assert!(peak.median().unwrap() >= avg.median().unwrap());
    }

    #[test]
    fn contention_cdf_matches_samples() {
        let report = small_report(true);
        let cdf = contention_cdf(&report);
        assert_eq!(cdf.len(), report.cpu_contention_samples.len());
    }
}
