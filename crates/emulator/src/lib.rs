//! Consolidation emulator for the reproduction of *Virtual Machine
//! Consolidation in the Wild* (Middleware 2014).
//!
//! §5.2: "It is not possible to use competing algorithms in a production
//! environment as workloads can't be replayed. ... Hence, we use an
//! emulator for this comparison. The emulator uses as input a set of
//! resource usage traces for each physical server and returns
//! consolidation statistics for the server."
//!
//! * [`engine`] — replays the actual hourly demand traces against a
//!   [`ConsolidationPlan`](vmcw_consolidation::ConsolidationPlan) and
//!   produces per-host-hour statistics: utilisation, contention, power,
//!   active servers.
//! * [`report`] — aggregates those statistics into exactly the series the
//!   paper's evaluation figures plot (Figs 7–12).
//! * [`apps`] — analytic application resource models (an Olio-like web
//!   app, a daxpy-like batch kernel, and the micro-benchmark "filler"),
//!   standing in for the proprietary benchmarks of §5.2.
//! * [`sla`] — per-VM attribution of contention: which workloads paid
//!   for aggressive consolidation (§7's SLA-risk discussion).
//! * [`validate`] — the emulator-accuracy experiment: replaying traces
//!   through the app models and measuring the 99th-percentile error
//!   (paper: ≤5% for RuBiS, ≤2% for daxpy).
//! * [`faults`] — seeded fault injection for replay: host crashes with
//!   HA evacuation, migration failures with retry/backoff, and trace
//!   dropouts survived by last-good-value hold. One seed yields one
//!   fault timeline, shared by every planner under comparison.
//! * [`checkpoint`] — versioned, bit-exact snapshots of a stepwise
//!   [`engine::Replay`], so an interrupted study resumes to a report
//!   byte-identical to an uninterrupted run.
//!
//! # Example
//!
//! ```
//! use vmcw_consolidation::{Planner, PlanningInput, VirtualizationModel};
//! use vmcw_emulator::{emulate, EmulatorConfig};
//! use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};
//!
//! let workload = GeneratorConfig::new(DataCenterId::Airlines)
//!     .scale(0.03)
//!     .days(10)
//!     .generate(1);
//! let input = PlanningInput::from_workload(&workload, 7, VirtualizationModel::default());
//! let plan = Planner::baseline().plan_semi_static(&input).unwrap();
//! let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
//! assert_eq!(report.hours, 72);
//! assert!(report.faults.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod checkpoint;
pub mod engine;
pub mod faults;
pub mod report;
pub mod sla;
pub mod validate;

pub use checkpoint::{CheckpointError, ReplayCheckpoint};
pub use engine::{
    emulate, emulate_with_faults, EmulationReport, EmulatorConfig, EmulatorError, Heartbeat,
    HostSummary, HourSummary, Replay,
};
pub use faults::{CrashSchedule, FaultConfig, FaultLedger, HostOutage, TraceGapError};
pub use validate::{
    check_checkpoint, check_retry_checkpoint, InvariantViolation, ReplayInvariant,
};
