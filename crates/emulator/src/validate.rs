//! Emulator-accuracy validation.
//!
//! §5.2: "We have verified the accuracy of the emulator using two
//! synthetic workloads RuBIS and daxpy. ... Given the resource consumption
//! in a trace, we run the workload at the appropriate intensity to consume
//! at least one of the two resources. The other resource is then consumed
//! using the micro benchmark. ... We observed that the 99 percentile error
//! bound of our emulator is 5% for RuBIS and 2% for daxpy."
//!
//! [`validate_emulator`] reproduces that methodology: for every trace
//! point it drives the application model at the intensity that consumes
//! the trace's CPU, fills the remaining memory with the micro-benchmark,
//! "measures" the achieved consumption (model output + measurement noise),
//! and reports the error distribution of the emulator's prediction (the
//! trace itself) against the measurement.

use crate::apps::{BatchKernelModel, MicroBenchmark, WebAppModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use vmcw_trace::stats;

/// Which benchmark drives the validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValidationWorkload {
    /// RuBiS-like web application (noisier: request-mix variation).
    RubisLike,
    /// daxpy-like batch kernel (very stable).
    DaxpyLike,
}

impl ValidationWorkload {
    /// Relative run-to-run variation of the benchmark itself.
    #[must_use]
    fn workload_noise(self) -> f64 {
        match self {
            // Request-mix and cache effects make a web benchmark noisier.
            ValidationWorkload::RubisLike => 0.018,
            ValidationWorkload::DaxpyLike => 0.006,
        }
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ValidationWorkload::RubisLike => "RuBiS-like",
            ValidationWorkload::DaxpyLike => "daxpy-like",
        }
    }
}

/// Result of one validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Which workload was used.
    pub workload: ValidationWorkload,
    /// Number of trace points replayed.
    pub points: usize,
    /// 99th-percentile relative CPU error.
    pub p99_cpu_error: f64,
    /// 99th-percentile relative memory error.
    pub p99_mem_error: f64,
    /// Mean relative CPU error.
    pub mean_cpu_error: f64,
    /// Mean relative memory error.
    pub mean_mem_error: f64,
}

/// Replays a (CPU cores, memory MB) trace through the benchmark + filler
/// pair and measures the emulator's prediction error.
///
/// # Panics
///
/// Panics if the traces have different lengths or are empty.
#[must_use]
pub fn validate_emulator(
    workload: ValidationWorkload,
    cpu_trace_cores: &[f64],
    mem_trace_mb: &[f64],
    seed: u64,
) -> ValidationReport {
    assert_eq!(
        cpu_trace_cores.len(),
        mem_trace_mb.len(),
        "CPU and memory traces must align"
    );
    assert!(!cpu_trace_cores.is_empty(), "need at least one trace point");

    let mut rng = StdRng::seed_from_u64(seed);
    let filler = MicroBenchmark::precise();
    let noise = workload.workload_noise();
    let mut cpu_errors = Vec::with_capacity(cpu_trace_cores.len());
    let mut mem_errors = Vec::with_capacity(cpu_trace_cores.len());

    for (&cpu_target, &mem_target) in cpu_trace_cores.iter().zip(mem_trace_mb) {
        // Drive the benchmark to consume the CPU target.
        let (bench_cpu, bench_mem) = match workload {
            ValidationWorkload::RubisLike => {
                let model = WebAppModel::rubis();
                let ops = model.ops_at_cpu(cpu_target);
                (model.cpu_cores(ops), model.mem_mb(ops))
            }
            ValidationWorkload::DaxpyLike => {
                let model = BatchKernelModel::daxpy();
                // daxpy consumes exactly the cores it is given; its
                // working set is sized to a fraction of the target.
                (model.cpu_cores(cpu_target), (mem_target * 0.6).max(1.0))
            }
        };
        // Benchmark execution has run-to-run variation.
        let measured_bench_cpu =
            bench_cpu * (1.0 + vmcw_trace::synth::gaussian(&mut rng, 0.0, noise));
        let measured_bench_mem =
            bench_mem * (1.0 + vmcw_trace::synth::gaussian(&mut rng, 0.0, noise));
        // Fill the remaining memory (and any CPU shortfall) with the
        // micro-benchmark.
        let fill_mem = (mem_target - bench_mem).max(0.0);
        let measured_fill_mem = filler.consume(&mut rng, fill_mem);
        let fill_cpu = (cpu_target - bench_cpu).max(0.0);
        let measured_fill_cpu = filler.consume(&mut rng, fill_cpu);

        let measured_cpu = measured_bench_cpu + measured_fill_cpu;
        let measured_mem = (measured_bench_mem + measured_fill_mem).max(1.0);
        if cpu_target > 1e-6 {
            cpu_errors.push((measured_cpu - cpu_target).abs() / cpu_target);
        }
        if mem_target > 1e-6 {
            mem_errors.push((measured_mem - mem_target).abs() / mem_target);
        }
    }

    ValidationReport {
        workload,
        points: cpu_trace_cores.len(),
        p99_cpu_error: stats::percentile(&cpu_errors, 99.0).unwrap_or(0.0),
        p99_mem_error: stats::percentile(&mem_errors, 99.0).unwrap_or(0.0),
        mean_cpu_error: stats::mean(&cpu_errors).unwrap_or(0.0),
        mean_mem_error: stats::mean(&mem_errors).unwrap_or(0.0),
    }
}

/// Generates a representative validation trace: a diurnal CPU pattern in
/// cores and a slowly varying memory commit, `points` hours long.
#[must_use]
pub fn validation_trace(points: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cpu = Vec::with_capacity(points);
    let mut mem = Vec::with_capacity(points);
    for h in 0..points {
        let curve = vmcw_trace::workload::business_curve(h % 24);
        let c = 0.2 + 1.3 * curve * (1.0 + vmcw_trace::synth::gaussian(&mut rng, 0.0, 0.05));
        let m = 900.0 + 500.0 * curve.powf(0.6) + vmcw_trace::synth::gaussian(&mut rng, 0.0, 10.0);
        cpu.push(c.max(0.05));
        mem.push(m.max(64.0));
    }
    (cpu, mem)
}

// --- replay invariants -----------------------------------------------------
//
// Beyond emulator *accuracy*, crash-safe studies need runtime *integrity*:
// every checkpoint boundary re-proves the structural invariants of the
// replay so that a corrupted journal or an engine bug is caught at the
// boundary where it appeared, not hours of replay later.

/// A structural invariant the replay engine must uphold at every
/// checkpoint boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayInvariant {
    /// A VM appears on two hosts of the in-effect placement.
    VmDoublePlaced,
    /// The placement references a host the data center does not provision.
    UnknownHost,
    /// An hour activated more hosts than the fleet provisions.
    FleetCapacityExceeded,
    /// A fault-ledger counter decreased between checkpoints.
    LedgerRegressed,
    /// The replay hour failed to advance between checkpoints.
    HourNotMonotone,
    /// Internal accounting is inconsistent (series length vs. hour,
    /// per-host hours vs. elapsed hours).
    AccountingMismatch,
}

impl ReplayInvariant {
    /// Stable human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplayInvariant::VmDoublePlaced => "no-vm-double-placed",
            ReplayInvariant::UnknownHost => "hosts-provisioned",
            ReplayInvariant::FleetCapacityExceeded => "fleet-capacity",
            ReplayInvariant::LedgerRegressed => "ledger-monotone",
            ReplayInvariant::HourNotMonotone => "hour-monotone",
            ReplayInvariant::AccountingMismatch => "accounting-consistent",
        }
    }
}

/// A violated replay invariant, raised as
/// [`CheckpointError::Invariant`](crate::checkpoint::CheckpointError).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub invariant: ReplayInvariant,
    /// Replay hour of the offending checkpoint.
    pub hour: usize,
    /// What exactly was inconsistent.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated at hour {}: {}",
            self.invariant.name(),
            self.hour,
            self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Reusable buffers for [`check_checkpoint_with`]. A supervisor that
/// validates a checkpoint every few replay hours keeps one of these per
/// cell so the duplicate-placement scan allocates only on its first use
/// (and whenever a checkpoint outgrows the retained capacity).
#[derive(Debug, Default)]
pub struct CheckScratch {
    placed: Vec<(vmcw_cluster::vm::VmId, vmcw_cluster::datacenter::HostId)>,
}

/// Checks every structural invariant of `ckpt` for a fleet of `n_hosts`
/// hosts, and — when the previous checkpoint of the same run is given —
/// the cross-checkpoint monotonicity invariants.
///
/// One-shot convenience over [`check_checkpoint_with`]; callers on a
/// repeated path should hold a [`CheckScratch`] instead.
///
/// # Errors
///
/// The first violated [`ReplayInvariant`], as an [`InvariantViolation`].
pub fn check_checkpoint(
    ckpt: &crate::checkpoint::ReplayCheckpoint,
    n_hosts: usize,
    prev: Option<&crate::checkpoint::ReplayCheckpoint>,
) -> Result<(), InvariantViolation> {
    check_checkpoint_with(&mut CheckScratch::default(), ckpt, n_hosts, prev)
}

/// Re-validates the checkpoint a *retried* cell is about to resume
/// from.
///
/// A retry after a crash or watchdog timeout must not trust anything
/// the failed attempt left in memory: the supervisor takes the last
/// checkpoint it journaled and runs the full structural invariant
/// suite over it before handing it back to `Replay::resume`. The
/// cross-checkpoint monotonicity context (`prev`) died with the failed
/// attempt, so only the single-checkpoint invariants are checked —
/// monotonicity resumes at the next cadence checkpoint.
///
/// # Errors
///
/// The first violated [`ReplayInvariant`], as an [`InvariantViolation`].
pub fn check_retry_checkpoint(
    ckpt: &crate::checkpoint::ReplayCheckpoint,
    n_hosts: usize,
) -> Result<(), InvariantViolation> {
    check_checkpoint(ckpt, n_hosts, None)
}

/// [`check_checkpoint`] with caller-owned scratch buffers.
///
/// # Errors
///
/// The first violated [`ReplayInvariant`], as an [`InvariantViolation`].
pub fn check_checkpoint_with(
    scratch: &mut CheckScratch,
    ckpt: &crate::checkpoint::ReplayCheckpoint,
    n_hosts: usize,
    prev: Option<&crate::checkpoint::ReplayCheckpoint>,
) -> Result<(), InvariantViolation> {
    let fail = |invariant: ReplayInvariant, detail: String| InvariantViolation {
        invariant,
        hour: ckpt.hour,
        detail,
    };

    // Accounting: series lengths and per-host hours must match the hour.
    if ckpt.hour > ckpt.total_hours {
        return Err(fail(
            ReplayInvariant::AccountingMismatch,
            format!("hour {} beyond total {}", ckpt.hour, ckpt.total_hours),
        ));
    }
    if ckpt.per_hour.len() != ckpt.hour {
        return Err(fail(
            ReplayInvariant::AccountingMismatch,
            format!("{} per-hour rows for {} hours", ckpt.per_hour.len(), ckpt.hour),
        ));
    }
    if ckpt.accs.len() != n_hosts {
        return Err(fail(
            ReplayInvariant::AccountingMismatch,
            format!("{} accumulators for {} hosts", ckpt.accs.len(), n_hosts),
        ));
    }
    for (i, a) in ckpt.accs.iter().enumerate() {
        if a.active_hours > ckpt.hour {
            return Err(fail(
                ReplayInvariant::AccountingMismatch,
                format!(
                    "host-{i} active {} of {} elapsed hours",
                    a.active_hours, ckpt.hour
                ),
            ));
        }
    }

    // Fleet capacity: no hour may activate more hosts than provisioned.
    for h in &ckpt.per_hour {
        if h.active_hosts > n_hosts {
            return Err(fail(
                ReplayInvariant::FleetCapacityExceeded,
                format!(
                    "hour {} activated {} of {} provisioned hosts",
                    h.hour, h.active_hosts, n_hosts
                ),
            ));
        }
    }

    // Placement integrity of the in-effect (fault-chased) placement.
    if let Some(fs) = &ckpt.fault {
        if fs.was_down.len() != n_hosts {
            return Err(fail(
                ReplayInvariant::AccountingMismatch,
                format!("{} down flags for {} hosts", fs.was_down.len(), n_hosts),
            ));
        }
        scratch.placed.clear();
        for (host, vms) in &fs.current {
            if host.0 as usize >= n_hosts {
                return Err(fail(
                    ReplayInvariant::UnknownHost,
                    format!("{host} is not provisioned (fleet of {n_hosts})"),
                ));
            }
            scratch.placed.extend(vms.iter().map(|&vm| (vm, *host)));
        }
        // Duplicate detection by sort + adjacent scan over the retained
        // buffer: the hosts arrive in ascending order, so for a doubly
        // placed VM the pair order matches the old insertion-order map.
        scratch.placed.sort_unstable();
        for w in scratch.placed.windows(2) {
            if w[0].0 == w[1].0 {
                let (vm, other, host) = (w[0].0, w[0].1, w[1].1);
                return Err(fail(
                    ReplayInvariant::VmDoublePlaced,
                    format!("{vm} on both {other} and {host}"),
                ));
            }
        }
    }

    // Cross-checkpoint monotonicity.
    if let Some(p) = prev {
        if ckpt.hour <= p.hour {
            return Err(fail(
                ReplayInvariant::HourNotMonotone,
                format!("hour went {} -> {}", p.hour, ckpt.hour),
            ));
        }
        let counters = |l: &crate::faults::FaultLedger| {
            [
                ("host_crashes", l.host_crashes),
                ("evacuations", l.evacuations),
                ("downtime_vm_hours", l.downtime_vm_hours),
                ("failed_migrations", l.failed_migrations),
                ("retried_migrations", l.retried_migrations),
                ("abandoned_migrations", l.abandoned_migrations),
                ("stale_sample_hours", l.stale_sample_hours),
            ]
        };
        for ((name, now), (_, before)) in counters(&ckpt.ledger).into_iter().zip(counters(&p.ledger))
        {
            if now < before {
                return Err(fail(
                    ReplayInvariant::LedgerRegressed,
                    format!("{name} went {before} -> {now}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rubis_error_within_paper_bound() {
        let (cpu, mem) = validation_trace(1000, 7);
        let report = validate_emulator(ValidationWorkload::RubisLike, &cpu, &mem, 11);
        assert!(
            report.p99_cpu_error < 0.05,
            "p99 cpu err {}",
            report.p99_cpu_error
        );
        assert!(
            report.p99_mem_error < 0.05,
            "p99 mem err {}",
            report.p99_mem_error
        );
        assert_eq!(report.points, 1000);
    }

    #[test]
    fn daxpy_error_within_paper_bound() {
        let (cpu, mem) = validation_trace(1000, 8);
        let report = validate_emulator(ValidationWorkload::DaxpyLike, &cpu, &mem, 12);
        assert!(
            report.p99_cpu_error < 0.02,
            "p99 cpu err {}",
            report.p99_cpu_error
        );
        assert!(
            report.p99_mem_error < 0.02,
            "p99 mem err {}",
            report.p99_mem_error
        );
    }

    #[test]
    fn daxpy_is_more_accurate_than_rubis() {
        let (cpu, mem) = validation_trace(2000, 9);
        let rubis = validate_emulator(ValidationWorkload::RubisLike, &cpu, &mem, 13);
        let daxpy = validate_emulator(ValidationWorkload::DaxpyLike, &cpu, &mem, 13);
        assert!(daxpy.p99_cpu_error < rubis.p99_cpu_error);
    }

    #[test]
    fn mean_error_below_p99() {
        let (cpu, mem) = validation_trace(500, 10);
        let report = validate_emulator(ValidationWorkload::RubisLike, &cpu, &mem, 14);
        assert!(report.mean_cpu_error <= report.p99_cpu_error);
        assert!(report.mean_mem_error <= report.p99_mem_error);
    }

    #[test]
    fn validation_is_deterministic_in_seed() {
        let (cpu, mem) = validation_trace(200, 1);
        let a = validate_emulator(ValidationWorkload::RubisLike, &cpu, &mem, 2);
        let b = validate_emulator(ValidationWorkload::RubisLike, &cpu, &mem, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_traces_rejected() {
        let _ = validate_emulator(ValidationWorkload::RubisLike, &[1.0], &[1.0, 2.0], 0);
    }

    #[test]
    fn labels() {
        assert_eq!(ValidationWorkload::RubisLike.label(), "RuBiS-like");
        assert_eq!(ValidationWorkload::DaxpyLike.label(), "daxpy-like");
    }
}
