//! Per-VM SLA violation accounting.
//!
//! The paper evaluates contention at the host level (Figs 8, 9); for a
//! datacenter operator the question that follows is *which workloads*
//! paid for it ("these savings were also associated with a higher risk of
//! SLA violations", §7). This module attributes each contended host-hour
//! to the VMs on the host, proportionally to their demand — the standard
//! work-conserving fair-share assumption — and aggregates per-VM
//! violation statistics.

use crate::engine::EmulatorError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;
use vmcw_consolidation::input::PlanningInput;
use vmcw_consolidation::planner::ConsolidationPlan;
use vmcw_trace::stats::Cdf;

/// Violation statistics of one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSla {
    /// The VM.
    pub vm: VmId,
    /// Hours in which some of this VM's CPU demand went unserved.
    pub violation_hours: usize,
    /// Total unserved CPU demand, RPE2-hours.
    pub unserved_cpu_rpe2_hours: f64,
    /// Total CPU demand, RPE2-hours.
    pub total_cpu_rpe2_hours: f64,
}

impl VmSla {
    /// Fraction of this VM's CPU demand that went unserved.
    #[must_use]
    pub fn unserved_fraction(&self) -> f64 {
        if self.total_cpu_rpe2_hours <= 0.0 {
            0.0
        } else {
            self.unserved_cpu_rpe2_hours / self.total_cpu_rpe2_hours
        }
    }
}

/// SLA analysis of a whole plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaReport {
    /// Per-VM statistics, ascending VM id.
    pub per_vm: Vec<VmSla>,
    /// Evaluation hours analysed.
    pub hours: usize,
}

impl SlaReport {
    /// VMs with at least one violation hour, worst (by unserved fraction)
    /// first.
    #[must_use]
    pub fn violators(&self) -> Vec<&VmSla> {
        let mut v: Vec<&VmSla> = self
            .per_vm
            .iter()
            .filter(|s| s.violation_hours > 0)
            .collect();
        v.sort_by(|a, b| {
            b.unserved_fraction()
                .total_cmp(&a.unserved_fraction())
                .then_with(|| a.vm.cmp(&b.vm))
        });
        v
    }

    /// Fraction of VMs that experienced any violation.
    #[must_use]
    pub fn violator_fraction(&self) -> f64 {
        if self.per_vm.is_empty() {
            return 0.0;
        }
        self.violators().len() as f64 / self.per_vm.len() as f64
    }

    /// CDF of per-VM unserved-demand fractions (violators only).
    #[must_use]
    pub fn unserved_fraction_cdf(&self) -> Cdf {
        self.violators()
            .iter()
            .map(|v| v.unserved_fraction())
            .collect()
    }

    /// Total unserved CPU across all VMs, RPE2-hours.
    #[must_use]
    pub fn total_unserved(&self) -> f64 {
        self.per_vm.iter().map(|v| v.unserved_cpu_rpe2_hours).sum()
    }
}

/// Replays the evaluation window and attributes unserved CPU demand to
/// VMs proportionally to their share of the host's demand.
///
/// # Errors
///
/// Returns [`EmulatorError::MissingTrace`] if the plan places a VM that
/// has no demand trace in the input.
pub fn analyze(
    input: &PlanningInput,
    plan: &ConsolidationPlan,
) -> Result<SlaReport, EmulatorError> {
    let eval = input.eval_range();
    let hours = eval.len();
    let capacities: Vec<Resources> = plan.dc.iter().map(|h| h.model.capacity()).collect();
    let mut acc: BTreeMap<VmId, VmSla> = input
        .vms
        .iter()
        .map(|t| {
            (
                t.vm.id,
                VmSla {
                    vm: t.vm.id,
                    violation_hours: 0,
                    unserved_cpu_rpe2_hours: 0.0,
                    total_cpu_rpe2_hours: 0.0,
                },
            )
        })
        .collect();

    // One demand buffer for the whole sweep; refilled per host-hour.
    let mut demands: Vec<(VmId, Resources)> = Vec::new();
    for h in 0..hours {
        let placement = plan.placements.at_hour(h);
        for (host, vms) in placement.active() {
            demands.clear();
            for &vm in vms {
                let trace = input
                    .vm_trace(vm)
                    .ok_or(EmulatorError::MissingTrace { vm })?;
                demands.push((vm, trace.demand_at(eval.start + h)));
            }
            let total_cpu: f64 = demands.iter().map(|(_, d)| d.cpu_rpe2).sum();
            let capacity = capacities
                .get(host.0 as usize)
                .ok_or(EmulatorError::UnknownHost { host })?;
            let unserved = (total_cpu - capacity.cpu_rpe2).max(0.0);
            for &(vm, d) in &demands {
                let s = acc.entry(vm).or_insert(VmSla {
                    vm,
                    violation_hours: 0,
                    unserved_cpu_rpe2_hours: 0.0,
                    total_cpu_rpe2_hours: 0.0,
                });
                s.total_cpu_rpe2_hours += d.cpu_rpe2;
                if unserved > 0.0 && total_cpu > 0.0 {
                    let share = d.cpu_rpe2 / total_cpu;
                    s.unserved_cpu_rpe2_hours += unserved * share;
                    s.violation_hours += 1;
                }
            }
        }
    }

    Ok(SlaReport {
        per_vm: acc.into_values().collect(),
        hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_consolidation::input::VirtualizationModel;
    use vmcw_consolidation::planner::{Planner, PlannerKind};
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn setup(dc: DataCenterId, kind: PlannerKind) -> (PlanningInput, ConsolidationPlan) {
        let w = GeneratorConfig::new(dc).scale(0.05).days(16).generate(13);
        let input = PlanningInput::from_workload(&w, 10, VirtualizationModel::baseline());
        let plan = Planner::baseline().plan(kind, &input).unwrap();
        (input, plan)
    }

    #[test]
    fn total_unserved_matches_emulator_contention() {
        let (input, plan) = setup(DataCenterId::Banking, PlannerKind::Dynamic);
        let sla = analyze(&input, &plan).unwrap();
        let report =
            crate::engine::emulate(&input, &plan, &crate::engine::EmulatorConfig::default())
                .unwrap();
        let capacity = plan.dc.template().capacity().cpu_rpe2;
        let emulator_unserved: f64 = report
            .per_hour
            .iter()
            .map(|h| h.cpu_contention * capacity)
            .sum();
        assert!(
            (sla.total_unserved() - emulator_unserved).abs() < 1e-6 * emulator_unserved.max(1.0),
            "sla {} vs emulator {}",
            sla.total_unserved(),
            emulator_unserved
        );
    }

    #[test]
    fn peak_sized_plans_have_no_violators() {
        let (input, plan) = setup(DataCenterId::Airlines, PlannerKind::SemiStatic);
        let sla = analyze(&input, &plan).unwrap();
        assert_eq!(sla.violators().len(), 0);
        assert_eq!(sla.violator_fraction(), 0.0);
        assert!(sla.unserved_fraction_cdf().is_empty());
    }

    #[test]
    fn bursty_dynamic_produces_ranked_violators() {
        let (input, plan) = setup(DataCenterId::Banking, PlannerKind::Dynamic);
        let sla = analyze(&input, &plan).unwrap();
        let violators = sla.violators();
        if violators.len() >= 2 {
            assert!(
                violators[0].unserved_fraction() >= violators[1].unserved_fraction(),
                "violators must be sorted worst-first"
            );
        }
        // Every VM accumulated its demand.
        assert!(sla.per_vm.iter().all(|v| v.total_cpu_rpe2_hours > 0.0));
        assert_eq!(sla.per_vm.len(), input.vms.len());
    }

    #[test]
    fn unserved_fraction_is_bounded() {
        let (input, plan) = setup(DataCenterId::Beverage, PlannerKind::Dynamic);
        let sla = analyze(&input, &plan).unwrap();
        for vm in &sla.per_vm {
            let f = vm.unserved_fraction();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", vm.vm);
        }
    }
}
