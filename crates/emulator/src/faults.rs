//! Seeded, deterministic fault injection for trace replay.
//!
//! Production consolidation runs on infrastructure that fails: hosts
//! crash, live migrations abort, monitoring samples go missing. The
//! emulator injects three fault classes during replay so planners can be
//! compared under *identical* failure conditions:
//!
//! 1. **Host crashes** — per-host exponential inter-arrival times with a
//!    configurable MTBF; a crashed host stays down for the MTTR and its
//!    VMs are evacuated through the consolidation drain path (HA
//!    restart), accruing downtime until re-placed.
//! 2. **Migration failures** — any migration scheduled while the source
//!    or destination violates the reliability thresholds (or by injected
//!    probability) fails, is rolled back, and is retried under a
//!    [`RetryPolicy`](vmcw_migration::RetryPolicy).
//! 3. **Trace dropouts** — missing or NaN hourly samples are survived by
//!    holding the last good value, with staleness tracking.
//!
//! Every random decision is drawn from a *keyed*, order-independent
//! stream: a crash timeline depends only on `(seed, host)`, a migration
//! failure on `(seed, vm, hour, attempt)`, a dropout on
//! `(seed, vm, hour)`. The same seed therefore yields the same fault
//! timeline for every planner, regardless of how many draws each one
//! happens to make.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::vm::VmId;
use vmcw_migration::RetryPolicy;

use crate::engine::EmulatorError;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the keyed fault streams. Runs sharing a seed share the
    /// whole fault timeline.
    pub seed: u64,
    /// Mean time between failures per host, hours. `0` disables crashes.
    pub host_mtbf_hours: f64,
    /// Mean time to repair a crashed host, hours.
    pub host_mttr_hours: f64,
    /// Per-attempt probability that a live migration fails outright.
    pub migration_failure_prob: f64,
    /// Whether a migration fails when its source or destination violates
    /// the emulator's reliability thresholds at schedule time.
    pub enforce_reliability_thresholds: bool,
    /// Per-sample probability that a VM's hourly trace sample is dropped.
    pub trace_dropout_prob: f64,
    /// Consecutive hours a held (stale) value may be substituted for a
    /// missing sample before the replay aborts with a trace-gap error.
    pub max_stale_hours: usize,
    /// Utilisation bounds `(cpu, mem)` for emergency (HA) evacuation
    /// packing — looser than planning bounds, since restarting a VM
    /// anywhere beats leaving it down.
    pub evacuation_bounds: (f64, f64),
    /// Retry policy for failed migrations.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// All fault classes disabled. Replay under this config is
    /// bit-identical to the plain engine.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            host_mtbf_hours: 0.0,
            host_mttr_hours: 1.0,
            migration_failure_prob: 0.0,
            enforce_reliability_thresholds: false,
            trace_dropout_prob: 0.0,
            max_stale_hours: 24,
            evacuation_bounds: (1.0, 1.0),
            retry: RetryPolicy::ha_default(),
        }
    }

    /// A moderate all-fault baseline: one crash per host per ~30 days,
    /// 2 h repairs, 5% migration failures, 1% sample dropouts.
    #[must_use]
    pub fn baseline(seed: u64) -> Self {
        Self {
            seed,
            host_mtbf_hours: 720.0,
            host_mttr_hours: 2.0,
            migration_failure_prob: 0.05,
            enforce_reliability_thresholds: true,
            trace_dropout_prob: 0.01,
            ..Self::disabled()
        }
    }

    /// Validates rates and bounds.
    ///
    /// # Errors
    ///
    /// Rejects NaN or negative times, probabilities outside `[0, 1]`, and
    /// non-positive evacuation bounds.
    pub fn validate(&self) -> Result<(), EmulatorError> {
        let invalid = |field: &'static str, value: f64| EmulatorError::InvalidFaultConfig {
            field,
            value,
        };
        if self.host_mtbf_hours.is_nan() || self.host_mtbf_hours < 0.0 {
            return Err(invalid("host_mtbf_hours", self.host_mtbf_hours));
        }
        if self.host_mttr_hours.is_nan() || self.host_mttr_hours <= 0.0 {
            return Err(invalid("host_mttr_hours", self.host_mttr_hours));
        }
        if !(0.0..=1.0).contains(&self.migration_failure_prob) {
            return Err(invalid("migration_failure_prob", self.migration_failure_prob));
        }
        if !(0.0..=1.0).contains(&self.trace_dropout_prob) {
            return Err(invalid("trace_dropout_prob", self.trace_dropout_prob));
        }
        if self.evacuation_bounds.0.is_nan() || self.evacuation_bounds.0 <= 0.0 {
            return Err(invalid("evacuation_bounds.cpu", self.evacuation_bounds.0));
        }
        if self.evacuation_bounds.1.is_nan() || self.evacuation_bounds.1 <= 0.0 {
            return Err(invalid("evacuation_bounds.mem", self.evacuation_bounds.1));
        }
        RetryPolicy::try_new(
            self.retry.max_attempts,
            self.retry.base_backoff_secs,
            self.retry.backoff_factor,
            self.retry.timeout_budget_secs,
        )
        .map_err(|_| invalid("retry", f64::from(self.retry.max_attempts)))?;
        Ok(())
    }

    /// Whether crash injection is active.
    #[must_use]
    pub fn crashes_enabled(&self) -> bool {
        self.host_mtbf_hours > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// An unrecoverable gap in a VM's demand trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGapError {
    /// The VM whose trace gapped.
    pub vm: VmId,
    /// Evaluation-relative hour at which replay gave up.
    pub hour: usize,
    /// Why the gap could not be survived.
    pub reason: TraceGapReason,
}

/// Why a trace gap was fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceGapReason {
    /// No good sample was ever observed for the VM, so there is nothing
    /// to hold.
    NeverObserved,
    /// The held value exceeded the configured staleness budget.
    StalenessBudgetExceeded {
        /// Consecutive stale hours at the point of failure.
        stale_hours: usize,
    },
}

impl fmt::Display for TraceGapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            TraceGapReason::NeverObserved => write!(
                f,
                "trace gap for {} at hour {}: no sample ever observed",
                self.vm, self.hour
            ),
            TraceGapReason::StalenessBudgetExceeded { stale_hours } => write!(
                f,
                "trace gap for {} at hour {}: held value stale for {} hours",
                self.vm, self.hour, stale_hours
            ),
        }
    }
}

impl Error for TraceGapError {}

/// Tally of every fault injected and survived during one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLedger {
    /// Host crash events (outage onsets among provisioned hosts).
    pub host_crashes: usize,
    /// VMs successfully restarted elsewhere by HA evacuation.
    pub evacuations: usize,
    /// Total VM downtime, in VM-hours.
    pub downtime_vm_hours: usize,
    /// Individual migration attempts that failed.
    pub failed_migrations: usize,
    /// Migrations that needed more than one attempt.
    pub retried_migrations: usize,
    /// Migrations abandoned after exhausting retries or the time budget.
    pub abandoned_migrations: usize,
    /// Hourly samples replaced by a held (stale) value.
    pub stale_sample_hours: usize,
}

impl FaultLedger {
    /// Whether no fault was recorded at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// One contiguous outage of a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostOutage {
    /// The crashed host.
    pub host: HostId,
    /// First down hour (evaluation-relative, inclusive).
    pub start_hour: usize,
    /// First hour back up (exclusive).
    pub end_hour: usize,
}

/// The complete crash timeline of a replay: per-host outage windows,
/// fully determined by `(seed, host id)` — independent of planner,
/// placement, and draw order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    outages: Vec<Vec<(usize, usize)>>,
    hours: usize,
}

impl CrashSchedule {
    /// Builds the timeline for `n_hosts` hosts over `hours` hours.
    ///
    /// Inter-crash times are exponential with the configured MTBF; each
    /// outage lasts `ceil(MTTR)` hours. An empty schedule is returned
    /// when crashes are disabled.
    #[must_use]
    pub fn generate(config: &FaultConfig, n_hosts: usize, hours: usize) -> Self {
        let mut outages = vec![Vec::new(); n_hosts];
        if !config.crashes_enabled() || hours == 0 {
            return Self { outages, hours };
        }
        let mttr = config.host_mttr_hours.ceil().max(1.0) as usize;
        for (i, host_outages) in outages.iter_mut().enumerate() {
            let mut t = 0.0f64;
            let mut k = 0u64;
            // The iteration cap only guards against pathological configs
            // (e.g. sub-hour MTBF); real timelines end far earlier.
            while t < hours as f64 && (k as usize) < hours.saturating_mul(4) + 64 {
                let u = keyed_unit(config.seed, DOMAIN_CRASH, i as u64, k);
                k += 1;
                t += -(1.0 - u).ln() * config.host_mtbf_hours;
                if t >= hours as f64 {
                    break;
                }
                let start = t as usize;
                let end = (start + mttr).min(hours);
                host_outages.push((start, end));
                t = end as f64;
            }
        }
        Self { outages, hours }
    }

    /// Whether `host` is down at evaluation-relative `hour`.
    #[must_use]
    pub fn is_down(&self, host: HostId, hour: usize) -> bool {
        self.outages
            .get(host.0 as usize)
            .is_some_and(|v| v.iter().any(|&(s, e)| (s..e).contains(&hour)))
    }

    /// All outages, ascending by host then start hour.
    #[must_use]
    pub fn outages(&self) -> Vec<HostOutage> {
        self.outages
            .iter()
            .enumerate()
            .flat_map(|(i, v)| {
                v.iter().map(move |&(start_hour, end_hour)| HostOutage {
                    host: HostId(i as u32),
                    start_hour,
                    end_hour,
                })
            })
            .collect()
    }

    /// Total outage count.
    #[must_use]
    pub fn outage_count(&self) -> usize {
        self.outages.iter().map(Vec::len).sum()
    }

    /// Hours the schedule covers.
    #[must_use]
    pub fn hours(&self) -> usize {
        self.hours
    }
}

const DOMAIN_CRASH: u64 = 0x43524153_48000001; // "CRASH"
const DOMAIN_MIGRATION: u64 = 0x4d494752_41544501; // "MIGRATE"
const DOMAIN_DROPOUT: u64 = 0x44524f50_4f555401; // "DROPOUT"

/// SplitMix64 finaliser: a high-quality 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit draw keyed by `(seed, domain, a, b)` — no stream state, so
/// the value is independent of every other draw.
fn keyed_u64(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    let z = mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(domain | 1));
    let z = mix(z ^ a.wrapping_mul(0xD1B5_4A32_D192_ED03));
    mix(z ^ b.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
}

/// A unit-interval draw in `[0, 1)` keyed by `(seed, domain, a, b)`.
fn keyed_unit(seed: u64, domain: u64, a: u64, b: u64) -> f64 {
    (keyed_u64(seed, domain, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Whether the `attempt`-th transfer of `vm`'s migration scheduled at
/// `hour` is randomly failed by injection.
#[must_use]
pub fn migration_attempt_fails(config: &FaultConfig, vm: VmId, hour: usize, attempt: u32) -> bool {
    config.migration_failure_prob > 0.0
        && keyed_unit(
            config.seed,
            DOMAIN_MIGRATION,
            u64::from(vm.0),
            (hour as u64) << 8 | u64::from(attempt & 0xff),
        ) < config.migration_failure_prob
}

/// Whether `vm`'s sample at evaluation-relative `hour` is dropped.
#[must_use]
pub fn sample_dropped(config: &FaultConfig, vm: VmId, hour: usize) -> bool {
    config.trace_dropout_prob > 0.0
        && keyed_unit(config.seed, DOMAIN_DROPOUT, u64::from(vm.0), hour as u64)
            < config.trace_dropout_prob
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            host_mtbf_hours: 48.0,
            host_mttr_hours: 3.0,
            ..FaultConfig::disabled()
        }
    }

    #[test]
    fn disabled_config_is_inert_and_valid() {
        let c = FaultConfig::disabled();
        c.validate().unwrap();
        assert!(!c.crashes_enabled());
        let s = CrashSchedule::generate(&c, 16, 336);
        assert_eq!(s.outage_count(), 0);
        assert!(!migration_attempt_fails(&c, VmId(3), 10, 1));
        assert!(!sample_dropped(&c, VmId(3), 10));
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let bad = |f: fn(&mut FaultConfig)| {
            let mut c = FaultConfig::baseline(1);
            f(&mut c);
            c.validate().unwrap_err()
        };
        bad(|c| c.host_mtbf_hours = f64::NAN);
        bad(|c| c.host_mtbf_hours = -1.0);
        bad(|c| c.host_mttr_hours = 0.0);
        bad(|c| c.migration_failure_prob = 1.5);
        bad(|c| c.migration_failure_prob = f64::NAN);
        bad(|c| c.trace_dropout_prob = -0.1);
        bad(|c| c.evacuation_bounds.0 = 0.0);
        bad(|c| c.evacuation_bounds.1 = f64::NAN);
        bad(|c| c.retry.max_attempts = 0);
        FaultConfig::baseline(1).validate().unwrap();
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = CrashSchedule::generate(&crashy(7), 20, 336);
        let b = CrashSchedule::generate(&crashy(7), 20, 336);
        assert_eq!(a, b);
        assert!(a.outage_count() > 0, "48h MTBF over 336h must crash");
    }

    #[test]
    fn different_seeds_differ() {
        let a = CrashSchedule::generate(&crashy(7), 20, 336);
        let b = CrashSchedule::generate(&crashy(8), 20, 336);
        assert_ne!(a, b);
    }

    #[test]
    fn schedules_are_prefix_stable_in_host_count() {
        // Host i's timeline depends only on (seed, i): provisioning more
        // hosts must not perturb existing hosts' outages.
        let small = CrashSchedule::generate(&crashy(7), 10, 336);
        let large = CrashSchedule::generate(&crashy(7), 40, 336);
        for h in 0..10u32 {
            for hour in 0..336 {
                assert_eq!(
                    small.is_down(HostId(h), hour),
                    large.is_down(HostId(h), hour)
                );
            }
        }
    }

    #[test]
    fn outages_respect_mttr_and_horizon() {
        let cfg = crashy(3);
        let s = CrashSchedule::generate(&cfg, 30, 200);
        for o in s.outages() {
            assert!(o.start_hour < 200);
            assert!(o.end_hour <= 200);
            assert!(o.end_hour > o.start_hour);
            assert!(o.end_hour - o.start_hour <= 3);
            assert!(s.is_down(o.host, o.start_hour));
            assert!(!s.is_down(o.host, o.end_hour.min(199)) || o.end_hour > 199);
        }
    }

    #[test]
    fn keyed_draws_are_order_independent() {
        let c = FaultConfig {
            migration_failure_prob: 0.5,
            trace_dropout_prob: 0.5,
            ..FaultConfig::baseline(11)
        };
        // The same key gives the same answer no matter what was drawn
        // before (there is no stream to advance).
        let first = migration_attempt_fails(&c, VmId(5), 7, 2);
        for other in 0..100 {
            let _ = migration_attempt_fails(&c, VmId(other), 1, 1);
            let _ = sample_dropped(&c, VmId(other), 3);
        }
        assert_eq!(first, migration_attempt_fails(&c, VmId(5), 7, 2));
    }

    #[test]
    fn dropout_rate_tracks_probability() {
        let c = FaultConfig {
            trace_dropout_prob: 0.2,
            ..FaultConfig::baseline(5)
        };
        let n = 20_000;
        let hits = (0..n)
            .filter(|&i| sample_dropped(&c, VmId(i as u32 % 100), i / 100))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn trace_gap_errors_format() {
        let e = TraceGapError {
            vm: VmId(4),
            hour: 12,
            reason: TraceGapReason::StalenessBudgetExceeded { stale_hours: 25 },
        };
        assert!(e.to_string().contains("stale for 25 hours"));
        let e = TraceGapError {
            vm: VmId(4),
            hour: 0,
            reason: TraceGapReason::NeverObserved,
        };
        assert!(e.to_string().contains("no sample ever observed"));
    }
}
